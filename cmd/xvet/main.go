// Command xvet is the repository's multichecker: it runs the standard
// `go vet` passes and then the custom invariant analyzers from
// internal/analysis (rawsql, deweycmp, regexploop, errdrop,
// recoverguard, opstats, ctxflow, lockscope, sqltaint, hotalloc,
// goleak, syncerr, statflow, snapfreeze, guardedby, walorder,
// xvetignore) that enforce the paper-derived disciplines the type
// system cannot see — including the interprocedural publication
// protocol (snapshot immutability, lock annotations, WAL-before-
// publish ordering) checked over the callgraph package.
//
// Usage:
//
//	xvet [-novet] [-only name,name] [-nocache] [-timing] [-list] [-json] [packages]
//	xvet -transcheck [-json]
//	xvet -plancheck [-matrix n] [-json]
//
// Packages default to ./... resolved against the enclosing module.
//
// Exit status: 0 if everything is clean, 1 if go vet fails or any
// analyzer/validator reports a finding, 2 on a package load failure or
// internal error. -novet skips the go vet subprocess (CI runs it as
// its own step); -only restricts the custom analyzers; -json emits
// machine-readable diagnostics on stdout instead of the text form.
//
// Analyzer results are cached per package under <module>/.xvetcache/,
// keyed by the analyzer set, the xvet binary's own signature, and the
// content of the package and its module-internal dependencies, so a
// warm run re-checks only what changed. -nocache bypasses the cache
// entirely. -timing reports per-analyzer wall time after the sweep.
//
// -transcheck runs the static translation validator instead of the
// analyzers: every Table 1 pattern derivation — over a synthetic
// axis/shape matrix and over all patterns traced while translating
// the fig3 and XPathMark query corpora — is checked for language
// equivalence against a reference automaton built directly from the
// axis semantics.
//
// -plancheck runs the static plan-equivalence checker instead of the
// analyzers: the fig3 and XPathMark corpora plus a seeded random query
// matrix (-matrix queries per workload, each compiled under both
// translators) are translated, compiled, and every compiled plan is
// certificate-checked against the logical form of its SQL statement;
// §4.5 path-filter omissions are re-justified independently.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/plancheck"
	"repro/internal/transcheck"
)

// jsonDiag is the machine-readable diagnostic form emitted by -json:
// one JSON object per line (JSON Lines), stable field names. It is
// also the cached on-disk form — positions survive without a FileSet.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (d jsonDiag) text() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

const (
	exitClean    = 0
	exitFindings = 1
	exitInternal = 2
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, factored for tests: dir anchors module
// discovery, the return value is the process exit code (0 clean, 1
// findings, 2 load failure or internal error).
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	novet := fs.Bool("novet", false, "skip running the standard `go vet` passes first")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	nocache := fs.Bool("nocache", false, "ignore and do not update the per-package result cache")
	list := fs.Bool("list", false, "list the custom analyzers and exit")
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON Lines on stdout")
	timing := fs.Bool("timing", false, "report per-analyzer wall time after the sweep")
	trans := fs.Bool("transcheck", false, "run the static translation validator instead of the analyzers")
	plan := fs.Bool("plancheck", false, "run the static plan-equivalence checker instead of the analyzers")
	matrixN := fs.Int("matrix", 2500, "with -plancheck: random queries per workload in the seeded matrix")
	if err := fs.Parse(args); err != nil {
		return exitInternal
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if *trans {
		return runTranscheck(*asJSON, stdout, stderr)
	}
	if *plan {
		return runPlancheck(*asJSON, *matrixN, stdout, stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings := false
	if !*novet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Dir = dir
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			findings = true
		}
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "xvet:", err)
		return exitInternal
	}
	res, err := runAnalyzers(dir, analyzers, patterns, *asJSON, !*nocache, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "xvet:", err)
		return exitInternal
	}
	if *timing {
		if err := reportTiming(res, *asJSON, stdout); err != nil {
			fmt.Fprintln(stderr, "xvet:", err)
			return exitInternal
		}
	}
	if findings || res.Findings > 0 {
		return exitFindings
	}
	return exitClean
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analysis.All(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a := analysis.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// analyzerRun summarizes one sweep for callers and tests.
type analyzerRun struct {
	Findings int // diagnostics emitted
	Loaded   int // packages type-checked and analyzed this run
	Hits     int // packages answered from the result cache

	// Timing accumulates each analyzer's wall time across the packages
	// loaded this run. Cache hits contribute nothing: their analyzers
	// never ran, which is exactly what -timing should show.
	Timing map[string]time.Duration
}

// jsonTiming is the -timing record emitted alongside diagnostics under
// -json: one object per analyzer, distinguished from jsonDiag by its
// "millis" field.
type jsonTiming struct {
	Analyzer string  `json:"analyzer"`
	Millis   float64 `json:"millis"`
}

// reportTiming prints the per-analyzer wall-time summary, slowest
// first, so the cost of the interprocedural passes (snapfreeze,
// guardedby, walorder build call graphs per package) stays visible.
func reportTiming(res analyzerRun, asJSON bool, stdout io.Writer) error {
	names := make([]string, 0, len(res.Timing))
	for name := range res.Timing {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if res.Timing[names[i]] != res.Timing[names[j]] {
			return res.Timing[names[i]] > res.Timing[names[j]]
		}
		return names[i] < names[j]
	})
	if asJSON {
		enc := json.NewEncoder(stdout)
		for _, name := range names {
			rec := jsonTiming{Analyzer: name, Millis: float64(res.Timing[name]) / float64(time.Millisecond)}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
		return nil
	}
	var total time.Duration
	for _, name := range names {
		total += res.Timing[name]
	}
	fmt.Fprintf(stdout, "xvet: timing: %d packages analyzed, %d from cache, analyzers %v total\n",
		res.Loaded, res.Hits, total.Round(time.Millisecond))
	for _, name := range names {
		fmt.Fprintf(stdout, "xvet: timing: %-12s %v\n", name, res.Timing[name].Round(time.Millisecond))
	}
	return nil
}

func runAnalyzers(dir string, analyzers []*analysis.Analyzer, patterns []string, asJSON, useCache bool, stdout io.Writer) (analyzerRun, error) {
	var res analyzerRun
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return res, err
	}
	pkgDirs, err := loader.Dirs(patterns...)
	if err != nil {
		return res, err
	}
	var cache *resultCache
	if useCache {
		if cache, err = newResultCache(loader, analyzers); err != nil {
			return res, err
		}
	}

	enc := json.NewEncoder(stdout)
	emit := func(d jsonDiag) error {
		res.Findings++
		if asJSON {
			return enc.Encode(d)
		}
		_, err := fmt.Fprintln(stdout, d.text())
		return err
	}

	for _, pkgDir := range pkgDirs {
		importPath, err := loader.ImportPath(pkgDir)
		if err != nil {
			return res, err
		}
		if cache != nil {
			if diags, ok := cache.get(importPath); ok {
				res.Hits++
				for _, d := range diags {
					if err := emit(d); err != nil {
						return res, err
					}
				}
				continue
			}
		}
		pkg, err := loader.Load(importPath)
		if err != nil {
			return res, err
		}
		diags, timings, err := analysis.RunTimed(pkg, analyzers)
		if err != nil {
			return res, err
		}
		res.Loaded++
		if res.Timing == nil {
			res.Timing = make(map[string]time.Duration, len(timings))
		}
		for name, d := range timings {
			res.Timing[name] += d
		}
		jds := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			jds = append(jds, jsonDiag{
				File:     pos.Filename,
				Line:     pos.Line,
				Column:   pos.Column,
				Analyzer: d.Analyzer.Name,
				Message:  d.Message,
			})
		}
		if cache != nil {
			if err := cache.put(importPath, jds); err != nil {
				return res, err
			}
		}
		for _, d := range jds {
			if err := emit(d); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

// runTranscheck executes both halves of the translation validator and
// reports findings; the exit status is the CI gate.
func runTranscheck(asJSON bool, stdout, stderr io.Writer) int {
	type result struct {
		name     string
		findings []transcheck.Finding
		stats    transcheck.Stats
	}
	var results []result
	fail := false

	mf, ms, err := transcheck.CheckMatrix()
	if err != nil {
		fmt.Fprintln(stderr, "xvet: transcheck matrix:", err)
		return exitInternal
	}
	results = append(results, result{"matrix", mf, ms})

	cf, cs, err := transcheck.CheckCorpus()
	if err != nil {
		fmt.Fprintln(stderr, "xvet: transcheck corpus:", err)
		return exitInternal
	}
	results = append(results, result{"corpus", cf, cs})

	enc := json.NewEncoder(stdout)
	for _, r := range results {
		for _, f := range r.findings {
			fail = true
			if asJSON {
				if err := enc.Encode(f); err != nil {
					fmt.Fprintln(stderr, "xvet:", err)
					return exitInternal
				}
			} else {
				fmt.Fprintf(stdout, "transcheck: %s\n", f)
			}
		}
		if !asJSON {
			switch r.name {
			case "matrix":
				fmt.Fprintf(stdout, "transcheck: matrix: %d derivations checked, %d findings\n",
					r.stats.Checked, len(r.findings))
			case "corpus":
				fmt.Fprintf(stdout, "transcheck: corpus: %d queries translated, %d distinct patterns checked, %d findings\n",
					r.stats.Queries, r.stats.Checked, len(r.findings))
			}
		}
	}
	if fail {
		return exitFindings
	}
	return exitClean
}

// runPlancheck sweeps the query corpora and the seeded random matrix
// through both translators, certificate-checking every compiled plan.
func runPlancheck(asJSON bool, matrixN int, stdout, stderr io.Writer) int {
	type result struct {
		name     string
		findings []plancheck.Finding
		stats    plancheck.Stats
	}
	var results []result

	cf, cs, err := plancheck.CheckCorpus()
	if err != nil {
		fmt.Fprintln(stderr, "xvet: plancheck corpus:", err)
		return exitInternal
	}
	results = append(results, result{"corpus", cf, cs})

	mf, ms, err := plancheck.CheckMatrix(matrixN, 1)
	if err != nil {
		fmt.Fprintln(stderr, "xvet: plancheck matrix:", err)
		return exitInternal
	}
	results = append(results, result{"matrix", mf, ms})

	enc := json.NewEncoder(stdout)
	fail := false
	for _, r := range results {
		for _, f := range r.findings {
			fail = true
			if asJSON {
				if err := enc.Encode(f); err != nil {
					fmt.Fprintln(stderr, "xvet:", err)
					return exitInternal
				}
			} else {
				fmt.Fprintf(stdout, "plancheck: %s\n", f)
			}
		}
		if !asJSON {
			fmt.Fprintf(stdout, "plancheck: %s: %d queries, %d plans checked, %d skipped, %d omissions audited, %d findings\n",
				r.name, r.stats.Queries, r.stats.Checked, r.stats.Skipped, r.stats.Omissions, len(r.findings))
		}
	}
	if fail {
		return exitFindings
	}
	return exitClean
}
