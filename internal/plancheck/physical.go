package plancheck

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/sqlast"
)

// The physical extractor maps a decompiled plan shape
// (engine.StmtShape) into the same canonical IR the logical extractor
// produces, and checkShapeSelect validates the certificate
// obligations the IR cannot express positionally: binding order,
// access-path justification, and pipeline legality.

// PhysicalIR extracts the canonical IR of a decompiled plan shape.
func PhysicalIR(sh *engine.StmtShape) (*StmtIR, error) {
	if sh.Select != nil {
		ir, err := physicalSelectIR(sh.Select)
		if err != nil {
			return nil, err
		}
		return &StmtIR{Select: ir}, nil
	}
	if sh.Union == nil {
		return nil, fmt.Errorf("shape has neither select nor union")
	}
	u := &UnionIR{
		OrderPos:  append([]int(nil), sh.Union.OrderPos...),
		OrderDesc: append([]bool(nil), sh.Union.OrderDesc...),
	}
	for _, br := range sh.Union.Branches {
		ir, err := physicalSelectIR(br)
		if err != nil {
			return nil, err
		}
		u.Branches = append(u.Branches, ir)
	}
	return &StmtIR{Union: u}, nil
}

// physicalSelectIR extracts one select's IR. Subplan fingerprints are
// computed first so marker indexes can be replaced by content
// addresses, making the comparison independent of subplan discovery
// order.
func physicalSelectIR(sh *engine.SelectShape) (*SelIR, error) {
	fps := make([]string, len(sh.Subplans))
	for k, sp := range sh.Subplans {
		sub, err := physicalSelectIR(sp.Select)
		if err != nil {
			return nil, err
		}
		fps[k] = fingerprint(sp.Kind + "|" + sub.canonical())
	}
	ir := &SelIR{
		Distinct:  sh.Distinct,
		CountStar: sh.CountStar,
		ColNames:  append([]string(nil), sh.ColNames...),
	}
	for _, s := range sh.Steps {
		ir.Tables = append(ir.Tables, s.Alias+"="+s.Table)
	}
	sort.Strings(ir.Tables)
	for _, c := range sh.Cols {
		e, err := replaceMarkers(c.Expr, fps)
		if err != nil {
			return nil, err
		}
		ir.Cols = append(ir.Cols, normalize(e).String())
	}
	var conjuncts []sqlast.Expr
	addFilter := func(es engine.ExprShape) error {
		e, err := replaceMarkers(es.Expr, fps)
		if err != nil {
			return err
		}
		conjuncts = append(conjuncts, e)
		return nil
	}
	for _, f := range sh.PreFilters {
		if err := addFilter(f); err != nil {
			return nil, err
		}
	}
	for _, s := range sh.Steps {
		for _, f := range s.Filters {
			if err := addFilter(f); err != nil {
				return nil, err
			}
		}
		// Omitted filters are part of the statement's conjunct multiset
		// even though the plan never evaluates them; the separate
		// estimate-provenance obligation proves each omission sound.
		for _, o := range s.Omitted {
			if err := addFilter(o.Pred); err != nil {
				return nil, err
			}
		}
	}
	ir.Preds, ir.predExprs = sortPreds(conjuncts)
	for _, o := range sh.OrderBy {
		e, err := replaceMarkers(o.Key.Expr, fps)
		if err != nil {
			return nil, err
		}
		ir.Order = append(ir.Order, orderText(normalize(e).String(), o.Desc))
	}
	return ir, nil
}

// replaceMarkers substitutes each subplan marker's positional index
// with the fingerprint of the subplan it references.
func replaceMarkers(e sqlast.Expr, fps []string) (sqlast.Expr, error) {
	switch x := e.(type) {
	case *sqlast.Func:
		if x.Name == engine.MarkerExists || x.Name == engine.MarkerNotExists || x.Name == engine.MarkerScalar {
			if len(x.Args) != 1 {
				return nil, fmt.Errorf("marker %s with %d args", x.Name, len(x.Args))
			}
			k, ok := x.Args[0].(*sqlast.IntLit)
			if !ok || k.Value < 0 || int(k.Value) >= len(fps) {
				return nil, fmt.Errorf("marker %s references unknown subplan %s", x.Name, x.Args[0])
			}
			return &sqlast.Func{Name: x.Name, Args: []sqlast.Expr{sqlast.Str(fps[k.Value])}}, nil
		}
		f := &sqlast.Func{Name: x.Name}
		for _, a := range x.Args {
			ra, err := replaceMarkers(a, fps)
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, ra)
		}
		return f, nil
	case *sqlast.Binary:
		l, err := replaceMarkers(x.L, fps)
		if err != nil {
			return nil, err
		}
		r, err := replaceMarkers(x.R, fps)
		if err != nil {
			return nil, err
		}
		return &sqlast.Binary{Op: x.Op, L: l, R: r}, nil
	case *sqlast.Not:
		inner, err := replaceMarkers(x.X, fps)
		if err != nil {
			return nil, err
		}
		return &sqlast.Not{X: inner}, nil
	case *sqlast.Between:
		bx, err := replaceMarkers(x.X, fps)
		if err != nil {
			return nil, err
		}
		lo, err := replaceMarkers(x.Lo, fps)
		if err != nil {
			return nil, err
		}
		hi, err := replaceMarkers(x.Hi, fps)
		if err != nil {
			return nil, err
		}
		return &sqlast.Between{X: bx, Lo: lo, Hi: hi}, nil
	case *sqlast.IsNull:
		inner, err := replaceMarkers(x.X, fps)
		if err != nil {
			return nil, err
		}
		return &sqlast.IsNull{X: inner, Negate: x.Negate}, nil
	}
	return e, nil
}

// checkShapeSelect validates one select shape's certificate
// obligations, recursing into subplans. outer is the alias set of
// enclosing selects; loc labels findings. Validated obligations are
// appended to cert.Steps. db is needed for the estimate-provenance
// obligation, which cross-checks omission evidence against the live
// table synopses.
func checkShapeSelect(db *engine.DB, sh *engine.SelectShape, outer map[string]bool, loc string, cert *Certificate) []Finding {
	var fs []Finding
	report := func(rule, detail string) {
		fs = append(fs, Finding{Rule: rule, Detail: loc + ": " + detail})
	}

	// Join order: the binding order must be a permutation of the
	// statement's FROM list, chosen by a known method.
	fromSet := map[string]int{}
	for _, a := range sh.FromOrder {
		fromSet[a]++
	}
	for _, s := range sh.Steps {
		fromSet[s.Alias]--
	}
	perm := len(sh.FromOrder) == len(sh.Steps)
	for _, n := range fromSet {
		if n != 0 {
			perm = false
		}
	}
	if !perm {
		report("join-order", fmt.Sprintf("binding order %v is not a permutation of FROM %v", stepAliases(sh), sh.FromOrder))
	}
	switch sh.JoinMethod {
	case "single", "dp", "greedy":
	default:
		report("join-order", fmt.Sprintf("unknown join-order method %q", sh.JoinMethod))
	}
	if perm {
		cert.step("join-order %s: %v is a permutation of FROM (%s)", loc, stepAliases(sh), sh.JoinMethod)
	}

	// Binding-order guard: every expression may reference only
	// aliases bound before the point where it is evaluated.
	bound := map[string]bool{}
	for a := range outer {
		bound[a] = true
	}
	checkRefs := func(what string, refs []string) {
		for _, r := range refs {
			if !bound[r] {
				report("binding-order", fmt.Sprintf("%s references %q before it is bound", what, r))
			}
		}
	}
	for i, f := range sh.PreFilters {
		checkRefs(fmt.Sprintf("prefilter %d (%s)", i, f.Text()), f.Refs)
	}
	for _, s := range sh.Steps {
		for _, es := range accessExprs(s.Access) {
			checkRefs(fmt.Sprintf("step %s access key %s", s.Alias, es.Text()), es.Refs)
		}
		bound[s.Alias] = true
		for _, f := range s.Filters {
			checkRefs(fmt.Sprintf("step %s filter %s", s.Alias, f.Text()), f.Refs)
		}
	}
	cert.step("binding-order %s: all references bound in order", loc)

	// Access-path substitution: each non-scan access must be
	// justified by a retained predicate of the same step plus index
	// metadata.
	for _, s := range sh.Steps {
		if f := checkAccess(s); f != nil {
			fs = append(fs, Finding{Rule: f.Rule, Detail: loc + ": " + f.Detail})
		} else {
			cert.step("access %s step %s: %s justified", loc, s.Alias, s.Access.Kind)
		}
	}

	// Estimate provenance: every step's cardinality estimate must carry
	// a known source, and every omitted filter must be independently
	// re-provable from its recorded synopsis evidence.
	for _, s := range sh.Steps {
		fs = append(fs, checkEstimates(db, s, loc, cert)...)
	}

	// Pipeline legality: the lowered operator sequence must place
	// scans, filters, projection, DISTINCT and ORDER BY exactly where
	// the select shape dictates.
	want := expectedPipeline(sh)
	if !equalStrings(want, sh.Pipeline) {
		report("pipeline", fmt.Sprintf("lowered pipeline %v, want %v%s", sh.Pipeline, want, firstTokenDiff(sh.Pipeline, want)))
	} else {
		cert.step("pipeline %s: %v", loc, sh.Pipeline)
	}

	// Subplans: same obligations, with this select's aliases visible.
	inner := map[string]bool{}
	for a := range outer {
		inner[a] = true
	}
	for _, s := range sh.Steps {
		inner[s.Alias] = true
	}
	for k, sp := range sh.Subplans {
		fs = append(fs, checkShapeSelect(db, sp.Select, inner, fmt.Sprintf("%s/subplan[%d]", loc, k), cert)...)
	}
	return fs
}

func stepAliases(sh *engine.SelectShape) []string {
	out := make([]string, len(sh.Steps))
	for i, s := range sh.Steps {
		out[i] = s.Alias
	}
	return out
}

// accessExprs lists the expressions an access path evaluates before
// the step's own row is bound.
func accessExprs(a engine.AccessShape) []engine.ExprShape {
	var out []engine.ExprShape
	out = append(out, a.Keys...)
	for _, es := range []engine.ExprShape{a.Key, a.Lo, a.Hi} {
		if es.Expr != nil {
			out = append(out, es)
		}
	}
	return out
}

// checkAccess verifies that a step's access path is justified: the
// rows it skips are exactly rows some retained predicate of the step
// rejects. Each rule searches the step's own (normalized) filters,
// because the planner derives access paths only from conjuncts that
// are attached to the same step.
func checkAccess(s engine.StepShape) *Finding {
	a := s.Access
	fail := func(detail string) *Finding {
		return &Finding{Rule: "access-path", Detail: fmt.Sprintf("step %s (%s): %s", s.Alias, a.Kind, detail)}
	}
	filters := make([]sqlast.Expr, 0, len(s.Filters))
	texts := make([]string, 0, len(s.Filters))
	for _, f := range s.Filters {
		n := normalize(f.Expr)
		filters = append(filters, n)
		texts = append(texts, n.String())
	}
	hasText := func(t string) bool {
		for _, ft := range texts {
			if ft == t {
				return true
			}
		}
		return false
	}
	col := func(name string) sqlast.Expr { return sqlast.C(s.Alias, name) }

	switch a.Kind {
	case "full-scan":
		return nil
	case "index-eq":
		if a.Index == "" || len(a.IndexCols) == 0 {
			return fail("no index metadata")
		}
		if len(a.Keys) == 0 || len(a.Keys) > len(a.IndexCols) {
			return fail(fmt.Sprintf("%d keys for %d index columns", len(a.Keys), len(a.IndexCols)))
		}
		if a.Col != a.IndexCols[0] {
			return fail(fmt.Sprintf("accessed column %q is not the leading index column %q", a.Col, a.IndexCols[0]))
		}
		for i, k := range a.Keys {
			want := normalize(&sqlast.Binary{Op: sqlast.OpEq, L: col(a.IndexCols[i]), R: k.Expr}).String()
			if !hasText(want) {
				return fail(fmt.Sprintf("no retained predicate %q justifies key %d", want, i))
			}
		}
		return nil
	case "hash-eq", "fat-hash":
		if a.Key.Expr == nil {
			return fail("no probe key")
		}
		want := normalize(&sqlast.Binary{Op: sqlast.OpEq, L: col(a.Col), R: a.Key.Expr}).String()
		if !hasText(want) {
			return fail(fmt.Sprintf("no retained predicate %q justifies the hash probe", want))
		}
		return nil
	case "index-prefixes":
		// Justified by a retained 'X BETWEEN t.col AND t.col || k'
		// conjunct: every row whose col is a byte-prefix of X
		// satisfies the BETWEEN's lower bound, and the enumeration
		// visits exactly the prefixes of X, so no qualifying row is
		// skipped (sound for any byte suffix k).
		if a.Index == "" || len(a.IndexCols) == 0 || a.Col != a.IndexCols[0] {
			return fail("no index metadata for prefix enumeration")
		}
		if a.Key.Expr == nil {
			return fail("no probe value")
		}
		keyText := normalize(a.Key.Expr).String()
		colText := col(a.Col).String()
		for _, f := range filters {
			b, ok := f.(*sqlast.Between)
			if !ok || b.X.String() != keyText || b.Lo.String() != colText {
				continue
			}
			hi, ok := b.Hi.(*sqlast.Binary)
			if !ok || hi.Op != sqlast.OpConcat || hi.L.String() != colText {
				continue
			}
			if _, ok := hi.R.(*sqlast.BytesLit); !ok {
				continue
			}
			return nil
		}
		return fail(fmt.Sprintf("no retained predicate %q BETWEEN %s AND %s || k justifies prefix enumeration", keyText, colText, colText))
	case "index-range":
		if a.Index == "" || len(a.IndexCols) == 0 || a.Col != a.IndexCols[0] {
			return fail("no index metadata for range scan")
		}
		if a.Lo.Expr == nil && a.Hi.Expr == nil {
			return fail("range access with no bounds")
		}
		ct := col(a.Col)
		// A two-sided non-strict range may be justified by a single
		// BETWEEN conjunct.
		if a.Lo.Expr != nil && a.Hi.Expr != nil && !a.LoStrict && !a.HiStrict {
			want := normalize(&sqlast.Between{X: ct, Lo: a.Lo.Expr, Hi: a.Hi.Expr}).String()
			if hasText(want) {
				return nil
			}
		}
		if a.Lo.Expr != nil {
			op := sqlast.OpLe
			if a.LoStrict {
				op = sqlast.OpLt
			}
			want := normalize(&sqlast.Binary{Op: op, L: a.Lo.Expr, R: ct}).String()
			if !hasText(want) {
				return fail(fmt.Sprintf("no retained predicate %q justifies the lower bound", want))
			}
		}
		if a.Hi.Expr != nil {
			op := sqlast.OpLe
			if a.HiStrict {
				op = sqlast.OpLt
			}
			want := normalize(&sqlast.Binary{Op: op, L: ct, R: a.Hi.Expr}).String()
			if !hasText(want) && !(a.HiStrict && concatHiJustified(filters, ct.String(), normalize(a.Hi.Expr).String())) {
				return fail(fmt.Sprintf("no retained predicate %q (or a col||k comparison) justifies the upper bound", want))
			}
		}
		return nil
	}
	return fail("unknown access kind")
}

// concatHiJustified reports whether some retained '(t.col || k) < hi'
// or '(t.col || k) <= hi' conjunct justifies a strict upper bound on
// t.col: col is a proper byte-prefix of col||k, so col < col||k <= hi
// implies col < hi.
func concatHiJustified(filters []sqlast.Expr, colText, hiText string) bool {
	for _, f := range filters {
		b, ok := f.(*sqlast.Binary)
		if !ok || (b.Op != sqlast.OpLt && b.Op != sqlast.OpLe) {
			continue
		}
		l, ok := b.L.(*sqlast.Binary)
		if !ok || l.Op != sqlast.OpConcat || l.L.String() != colText {
			continue
		}
		if b.R.String() == hiText {
			return true
		}
	}
	return false
}

// expectedPipeline derives the only legal operator sequence for a
// select shape.
func expectedPipeline(sh *engine.SelectShape) []string {
	var out []string
	if len(sh.PreFilters) > 0 {
		out = append(out, "prefilter")
	}
	for _, s := range sh.Steps {
		out = append(out, "scan "+s.Alias)
		if len(s.Filters) > 0 {
			out = append(out, "filter "+s.Alias)
		}
	}
	if sh.CountStar {
		out = append(out, "count")
	} else {
		out = append(out, "project")
	}
	if sh.Distinct {
		out = append(out, "distinct")
	}
	if len(sh.OrderBy) > 0 {
		out = append(out, "sort")
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// firstTokenDiff renders the minimal counterexample for a pipeline
// mismatch.
func firstTokenDiff(got, want []string) string {
	for i := 0; i < len(got) || i < len(want); i++ {
		g, w := "(end)", "(end)"
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			w = want[i]
		}
		if g != w {
			return fmt.Sprintf("; first difference at operator %d: got %s, want %s", i, g, w)
		}
	}
	return ""
}
