package core

import (
	"fmt"
	"math"

	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/sqlast"
	"repro/internal/xpath"
)

// translatePredicate translates one XPath predicate attached to the
// prominent step described by ctx, producing a three-valued SQL
// condition. Conditions requiring the predicated relation's paths
// join (Table 5-2) are added to sel on demand.
func (b *builder) translatePredicate(sel *sqlast.Select, e xpath.Expr, ctx chainCtx) (sqlCond, error) {
	switch x := e.(type) {
	case *xpath.Binary:
		switch {
		case x.Op == xpath.OpAnd:
			l, err := b.translatePredicate(sel, x.L, ctx)
			if err != nil || l.isFalse {
				return l, err
			}
			r, err := b.translatePredicate(sel, x.R, ctx)
			if err != nil || r.isFalse {
				return r, err
			}
			if l.isTrue {
				return r, nil
			}
			if r.isTrue {
				return l, nil
			}
			return dyn(sqlast.And(l.expr, r.expr)), nil
		case x.Op == xpath.OpOr:
			l, err := b.translatePredicate(sel, x.L, ctx)
			if err != nil || l.isTrue {
				return l, err
			}
			r, err := b.translatePredicate(sel, x.R, ctx)
			if err != nil || r.isTrue {
				return r, err
			}
			if l.isFalse {
				return r, nil
			}
			if r.isFalse {
				return l, nil
			}
			return dyn(sqlast.Or(l.expr, r.expr)), nil
		case x.Op.Comparison():
			return b.translateComparison(sel, x, ctx)
		default:
			return sqlCond{}, fmt.Errorf("a bare arithmetic predicate is positional and not supported in SQL translation")
		}
	case *xpath.Call:
		switch x.Name {
		case "not":
			inner, err := b.translatePredicate(sel, x.Args[0], ctx)
			if err != nil {
				return sqlCond{}, err
			}
			switch {
			case inner.isTrue:
				return condFalse, nil
			case inner.isFalse:
				return condTrue, nil
			default:
				return dyn(negate(inner.expr)), nil
			}
		case "last":
			// '[last()]' is '[position() = last()]' per XPath's numeric
			// predicate rule.
			return b.lastPredicate(ctx)
		case "position":
			// '[position()]' compares position() with itself: true.
			return condTrue, nil
		default:
			return sqlCond{}, fmt.Errorf("function %s() cannot be a boolean predicate in SQL translation", x.Name)
		}
	case *xpath.Path:
		return b.predPathExists(sel, x, ctx)
	case *xpath.Union:
		var out sqlCond = condFalse
		for _, p := range x.Paths {
			c, err := b.predPathExists(sel, p, ctx)
			if err != nil || c.isTrue {
				return c, err
			}
			if c.isFalse {
				continue
			}
			if out.isFalse {
				out = c
			} else {
				out = dyn(sqlast.Or(out.expr, c.expr))
			}
		}
		return out, nil
	case *xpath.Number:
		return b.positional(sqlast.OpEq, x.Value, ctx)
	case *xpath.Literal:
		if x.Value != "" {
			return condTrue, nil
		}
		return condFalse, nil
	}
	return sqlCond{}, fmt.Errorf("unsupported predicate %T", e)
}

// negate builds NOT(e), flipping EXISTS directly.
func negate(e sqlast.Expr) sqlast.Expr {
	if ex, ok := e.(*sqlast.Exists); ok {
		return &sqlast.Exists{Select: ex.Select, Negate: !ex.Negate}
	}
	return &sqlast.Not{X: e}
}

// --- comparisons ---

func (b *builder) translateComparison(sel *sqlast.Select, x *xpath.Binary, ctx chainCtx) (sqlCond, error) {
	op := sqlOp(x.Op)
	lPath, lf, lIsPath := valuePath(x.L)
	rPath, rf, rIsPath := valuePath(x.R)
	switch {
	case lIsPath && rIsPath:
		if lf != nil || rf != nil {
			return sqlCond{}, fmt.Errorf("arithmetic on both sides of a join predicate is not supported")
		}
		return b.joinClause(op, lPath, rPath, ctx)
	case lIsPath:
		c, ok := constExpr(x.R)
		if !ok {
			return b.specialComparison(sel, x, ctx)
		}
		return b.valueComparison(op, lPath, lf, c, ctx)
	case rIsPath:
		c, ok := constExpr(x.L)
		if !ok {
			return b.specialComparison(sel, x, ctx)
		}
		return b.valueComparison(flipSQLOp(op), rPath, rf, c, ctx)
	default:
		return b.specialComparison(sel, x, ctx)
	}
}

// specialComparison handles position(), last(), count() and
// constant-only comparisons.
func (b *builder) specialComparison(sel *sqlast.Select, x *xpath.Binary, ctx chainCtx) (sqlCond, error) {
	// position()/last()/number on both sides: expressed with sibling
	// count subqueries (position = preceding+1, last = total).
	if l, lok := positionTerm(x.L); lok {
		if r, rok := positionTerm(x.R); rok && !(l.kind == 'n' && r.kind == 'n') {
			le, err := b.positionTermExpr(l, ctx)
			if err != nil {
				return sqlCond{}, err
			}
			re, err := b.positionTermExpr(r, ctx)
			if err != nil {
				return sqlCond{}, err
			}
			return dyn(&sqlast.Binary{Op: sqlOp(x.Op), L: le, R: re}), nil
		}
	}
	// count(path) op number / number op count(path).
	if call, ok := x.L.(*xpath.Call); ok && call.Name == "count" {
		if n, ok := x.R.(*xpath.Number); ok {
			return b.countComparison(sqlOp(x.Op), call.Args[0], n.Value, ctx)
		}
	}
	if call, ok := x.R.(*xpath.Call); ok && call.Name == "count" {
		if n, ok := x.L.(*xpath.Number); ok {
			return b.countComparison(flipSQLOp(sqlOp(x.Op)), call.Args[0], n.Value, ctx)
		}
	}
	// Constant vs constant: fold.
	lc, lok := constValue(x.L)
	rc, rok := constValue(x.R)
	if lok && rok {
		if staticCompare(x.Op, lc, rc) {
			return condTrue, nil
		}
		return condFalse, nil
	}
	return sqlCond{}, fmt.Errorf("unsupported comparison %s", x)
}

// valuePath decomposes an operand into a path plus an optional
// arithmetic transform over the path's value (e.g. 'price * 2').
func valuePath(e xpath.Expr) (*xpath.Path, func(sqlast.Expr) sqlast.Expr, bool) {
	switch x := e.(type) {
	case *xpath.Path:
		return x, nil, true
	case *xpath.Binary:
		if !x.Op.Arithmetic() {
			return nil, nil, false
		}
		if p, f, ok := valuePath(x.L); ok {
			if c, cok := constExpr(x.R); cok {
				op := x.Op
				return p, compose(f, func(col sqlast.Expr) sqlast.Expr {
					return &sqlast.Binary{Op: sqlArith(op), L: col, R: c}
				}), true
			}
			return nil, nil, false
		}
		if p, f, ok := valuePath(x.R); ok {
			if c, cok := constExpr(x.L); cok {
				op := x.Op
				return p, compose(f, func(col sqlast.Expr) sqlast.Expr {
					return &sqlast.Binary{Op: sqlArith(op), L: c, R: col}
				}), true
			}
		}
	}
	return nil, nil, false
}

func compose(f, g func(sqlast.Expr) sqlast.Expr) func(sqlast.Expr) sqlast.Expr {
	if f == nil {
		return g
	}
	return func(e sqlast.Expr) sqlast.Expr { return g(f(e)) }
}

// constExpr folds a constant XPath expression into a SQL literal.
func constExpr(e xpath.Expr) (sqlast.Expr, bool) {
	v, ok := constValue(e)
	if !ok {
		return nil, false
	}
	switch x := v.(type) {
	case string:
		return sqlast.Str(x), true
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return sqlast.Int(int64(x)), true
		}
		return &sqlast.FloatLit{Value: x}, true
	}
	return nil, false
}

// constValue evaluates literals and constant arithmetic.
func constValue(e xpath.Expr) (interface{}, bool) {
	switch x := e.(type) {
	case *xpath.Literal:
		return x.Value, true
	case *xpath.Number:
		return x.Value, true
	case *xpath.Binary:
		if !x.Op.Arithmetic() {
			return nil, false
		}
		l, lok := constNum(x.L)
		r, rok := constNum(x.R)
		if !lok || !rok {
			return nil, false
		}
		switch x.Op {
		case xpath.OpAdd:
			return l + r, true
		case xpath.OpSub:
			return l - r, true
		case xpath.OpMul:
			return l * r, true
		case xpath.OpDiv:
			return l / r, true
		case xpath.OpMod:
			return math.Mod(l, r), true
		}
	}
	return nil, false
}

func constNum(e xpath.Expr) (float64, bool) {
	v, ok := constValue(e)
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	return f, ok
}

func staticCompare(op xpath.Op, a, b interface{}) bool {
	af, aIsNum := a.(float64)
	bf, bIsNum := b.(float64)
	if aIsNum && bIsNum {
		switch op {
		case xpath.OpEq:
			return af == bf
		case xpath.OpNe:
			return af != bf
		case xpath.OpLt:
			return af < bf
		case xpath.OpLe:
			return af <= bf
		case xpath.OpGt:
			return af > bf
		case xpath.OpGe:
			return af >= bf
		}
	}
	as, _ := a.(string)
	bs, _ := b.(string)
	switch op {
	case xpath.OpEq:
		return as == bs
	case xpath.OpNe:
		return as != bs
	}
	return false
}

func sqlOp(op xpath.Op) sqlast.BinOp {
	switch op {
	case xpath.OpEq:
		return sqlast.OpEq
	case xpath.OpNe:
		return sqlast.OpNe
	case xpath.OpLt:
		return sqlast.OpLt
	case xpath.OpLe:
		return sqlast.OpLe
	case xpath.OpGt:
		return sqlast.OpGt
	case xpath.OpGe:
		return sqlast.OpGe
	}
	panic("core: not a comparison operator")
}

func sqlArith(op xpath.Op) sqlast.BinOp {
	switch op {
	case xpath.OpAdd:
		return sqlast.OpAdd
	case xpath.OpSub:
		return sqlast.OpSub
	case xpath.OpMul:
		return sqlast.OpMul
	case xpath.OpDiv:
		return sqlast.OpDiv
	default:
		return sqlast.OpMod
	}
}

func flipSQLOp(op sqlast.BinOp) sqlast.BinOp {
	switch op {
	case sqlast.OpLt:
		return sqlast.OpGt
	case sqlast.OpLe:
		return sqlast.OpGe
	case sqlast.OpGt:
		return sqlast.OpLt
	case sqlast.OpGe:
		return sqlast.OpLe
	}
	return op
}

// --- predicate path machinery ---

// predChain is one relation combination of a predicate path: the
// subselect fragment chain, its end context, and the terminal
// attribute/text() step if any.
type predChain struct {
	sel      *sqlast.Select
	end      chainCtx
	terminal *xpath.Step
}

// predPathExists translates a bare path predicate (existence).
func (b *builder) predPathExists(sel *sqlast.Select, p *xpath.Path, ctx chainCtx) (sqlCond, error) {
	// Attribute / text() / self shortcuts on the predicated element.
	if !p.Absolute && len(p.Steps) == 1 {
		s := p.Steps[0]
		if s.Axis == xpath.Attribute && len(s.Predicates) == 0 {
			if !ctx.node.HasAttr(s.Name) {
				return condFalse, nil
			}
			return dyn(&sqlast.IsNull{X: sqlast.C(ctx.alias, shred.AttrCol(s.Name)), Negate: true}), nil
		}
		if s.Test == xpath.TextTest && len(s.Predicates) == 0 {
			if !ctx.node.HasText {
				return condFalse, nil
			}
			return dyn(&sqlast.IsNull{X: sqlast.C(ctx.alias, shred.ColText), Negate: true}), nil
		}
		if s.Axis == xpath.Self && s.Test == xpath.AnyKindTest && len(s.Predicates) == 0 {
			// '.' always selects the context node itself.
			return condTrue, nil
		}
	}
	// Backward simple path: Table 5-2 — pure path-id filtering on the
	// predicated relation, no structural join.
	if !p.Absolute && isBackwardSimple(p.Steps) {
		steps, _, err := normalizeSteps(p.Steps)
		if err != nil {
			return sqlCond{}, err
		}
		pattern, err := backwardRegex(steps, ctx.namePat)
		if err != nil {
			return sqlCond{}, err
		}
		return b.pathFilterCond(sel, ctx.alias, ctx.node, pattern)
	}
	// General case: one EXISTS per relation combination, OR-ed
	// (Section 4.4: predicates never split the outer statement).
	chains, err := b.buildPredChains(p, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	var out sqlCond = condFalse
	for _, c := range chains {
		ok, err := b.applyTerminal(c.sel, c.end, c.terminal)
		if err != nil {
			return sqlCond{}, err
		}
		if !ok {
			continue
		}
		ex := dyn(&sqlast.Exists{Select: c.sel})
		if out.isFalse {
			out = ex
		} else {
			out = dyn(sqlast.Or(out.expr, ex.expr))
		}
	}
	return out, nil
}

// isBackwardSimple reports whether all steps are backward vertical
// axes with no predicates (a backward simple path usable for Table
// 5-2 filtering).
func isBackwardSimple(steps []*xpath.Step) bool {
	for _, s := range steps {
		if !s.Axis.Backward() || len(s.Predicates) > 0 || s.Test == xpath.TextTest {
			return false
		}
	}
	return len(steps) > 0
}

// buildPredChains builds the subselect chains for a predicate path.
func (b *builder) buildPredChains(p *xpath.Path, ctx chainCtx) ([]predChain, error) {
	frags, terminal, err := splitPPFs(p.Steps)
	if err != nil {
		return nil, err
	}
	if len(frags) == 0 {
		return nil, fmt.Errorf("empty predicate path %q", p)
	}
	start := ctx
	var startSet []*schema.Node
	if p.Absolute {
		start = chainCtx{}
	} else {
		startSet = []*schema.Node{ctx.node}
	}
	combos, err := b.tr.enumerate(frags, startSet)
	if err != nil {
		return nil, err
	}
	var out []predChain
	for _, combo := range combos {
		sub := &sqlast.Select{Cols: []sqlast.SelectCol{{Expr: &sqlast.NullLit{}}}}
		end, ok, err := b.buildChain(sub, frags, combo, start)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		out = append(out, predChain{sel: sub, end: end, terminal: terminal})
	}
	return out, nil
}

// valueComparison translates 'path OP constant' (with an optional
// arithmetic transform on the path's value).
func (b *builder) valueComparison(op sqlast.BinOp, p *xpath.Path, f func(sqlast.Expr) sqlast.Expr, c sqlast.Expr, ctx chainCtx) (sqlCond, error) {
	// '@attr OP const' and 'text() OP const' and '. OP const' compare
	// columns of the predicated relation directly.
	if col, ok, err := b.selfValueColumn(p, ctx); err != nil {
		return sqlCond{}, err
	} else if ok {
		if col == nil {
			return condFalse, nil
		}
		return dyn(&sqlast.Binary{Op: op, L: applyf(f, col), R: c}), nil
	}
	chains, err := b.buildPredChains(p, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	var out sqlCond = condFalse
	for _, ch := range chains {
		col, ok := b.chainValueColumn(ch)
		if !ok {
			continue
		}
		ch.sel.AddConjunct(&sqlast.Binary{Op: op, L: applyf(f, col), R: c})
		ex := dyn(&sqlast.Exists{Select: ch.sel})
		if out.isFalse {
			out = ex
		} else {
			out = dyn(sqlast.Or(out.expr, ex.expr))
		}
	}
	return out, nil
}

func applyf(f func(sqlast.Expr) sqlast.Expr, e sqlast.Expr) sqlast.Expr {
	if f == nil {
		return e
	}
	return f(e)
}

// selfValueColumn matches predicate paths that denote a value of the
// predicated element itself: '.', 'text()', '@attr'. It returns
// (nil, true, nil) when the path matches but the relation cannot hold
// the value (statically false).
func (b *builder) selfValueColumn(p *xpath.Path, ctx chainCtx) (sqlast.Expr, bool, error) {
	if p.Absolute {
		return nil, false, nil
	}
	if len(p.Steps) == 1 {
		s := p.Steps[0]
		switch {
		case s.Axis == xpath.Attribute && len(s.Predicates) == 0:
			if !ctx.node.HasAttr(s.Name) {
				return nil, true, nil
			}
			return sqlast.C(ctx.alias, shred.AttrCol(s.Name)), true, nil
		case s.Axis == xpath.Child && s.Test == xpath.TextTest && len(s.Predicates) == 0:
			if !ctx.node.HasText {
				return nil, true, nil
			}
			return sqlast.C(ctx.alias, shred.ColText), true, nil
		case s.Axis == xpath.Self && s.Test == xpath.AnyKindTest && len(s.Predicates) == 0:
			if !ctx.node.HasText {
				return nil, true, nil
			}
			return sqlast.C(ctx.alias, shred.ColText), true, nil
		}
	}
	return nil, false, nil
}

// chainValueColumn returns the value column of a chain's end element
// (its text column, or the terminal attribute column).
func (b *builder) chainValueColumn(ch predChain) (sqlast.Expr, bool) {
	if ch.terminal != nil {
		if ch.terminal.Axis == xpath.Attribute {
			if !ch.end.node.HasAttr(ch.terminal.Name) {
				return nil, false
			}
			return sqlast.C(ch.end.alias, shred.AttrCol(ch.terminal.Name)), true
		}
		// text()
		if !ch.end.node.HasText {
			return nil, false
		}
		return sqlast.C(ch.end.alias, shred.ColText), true
	}
	if !ch.end.node.HasText {
		return nil, false
	}
	return sqlast.C(ch.end.alias, shred.ColText), true
}

// joinClause translates 'pathL OP pathR' (a predicate join clause):
// both paths' relations live in one EXISTS subselect with a theta
// join between their value columns.
func (b *builder) joinClause(op sqlast.BinOp, pl, pr *xpath.Path, ctx chainCtx) (sqlCond, error) {
	// '.' on either side compares against the predicated element.
	selfL, okL, err := b.selfValueColumn(pl, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	selfR, okR, err := b.selfValueColumn(pr, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	if okL && okR {
		if selfL == nil || selfR == nil {
			return condFalse, nil
		}
		return dyn(&sqlast.Binary{Op: op, L: selfL, R: selfR}), nil
	}
	if okL {
		if selfL == nil {
			return condFalse, nil
		}
		return b.halfJoinClause(op, selfL, pr, ctx, false)
	}
	if okR {
		if selfR == nil {
			return condFalse, nil
		}
		return b.halfJoinClause(flipSQLOp(op), selfR, pl, ctx, false)
	}

	chainsL, err := b.buildPredChains(pl, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	var out sqlCond = condFalse
	for _, cl := range chainsL {
		colL, ok := b.chainValueColumn(cl)
		if !ok {
			continue
		}
		chainsR, err := b.buildPredChains(pr, ctx)
		if err != nil {
			return sqlCond{}, err
		}
		for _, cr := range chainsR {
			colR, ok := b.chainValueColumn(cr)
			if !ok {
				continue
			}
			// Merge the right chain into the left subselect.
			merged := cl.sel
			if cl.sel == cr.sel {
				return sqlCond{}, fmt.Errorf("internal: predicate chains must be distinct selects")
			}
			mergedCopy := &sqlast.Select{
				Cols:  merged.Cols,
				From:  append(append([]sqlast.TableRef(nil), merged.From...), cr.sel.From...),
				Where: sqlast.And(merged.Where, cr.sel.Where),
			}
			mergedCopy.AddConjunct(&sqlast.Binary{Op: op, L: colL, R: colR})
			ex := dyn(&sqlast.Exists{Select: mergedCopy})
			if out.isFalse {
				out = ex
			} else {
				out = dyn(sqlast.Or(out.expr, ex.expr))
			}
		}
	}
	return out, nil
}

// halfJoinClause compares a column of the predicated element against
// a path's value inside one EXISTS.
func (b *builder) halfJoinClause(op sqlast.BinOp, col sqlast.Expr, p *xpath.Path, ctx chainCtx, _ bool) (sqlCond, error) {
	chains, err := b.buildPredChains(p, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	var out sqlCond = condFalse
	for _, ch := range chains {
		rcol, ok := b.chainValueColumn(ch)
		if !ok {
			continue
		}
		ch.sel.AddConjunct(&sqlast.Binary{Op: op, L: col, R: rcol})
		ex := dyn(&sqlast.Exists{Select: ch.sel})
		if out.isFalse {
			out = ex
		} else {
			out = dyn(sqlast.Or(out.expr, ex.expr))
		}
	}
	return out, nil
}

// countComparison translates 'count(path) OP n' with a scalar COUNT
// subquery. Only single-combination paths are supported.
func (b *builder) countComparison(op sqlast.BinOp, arg xpath.Expr, n float64, ctx chainCtx) (sqlCond, error) {
	p, ok := arg.(*xpath.Path)
	if !ok {
		return sqlCond{}, fmt.Errorf("count() requires a path argument")
	}
	chains, err := b.buildPredChains(p, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	live := chains[:0]
	for _, ch := range chains {
		ok, err := b.applyTerminal(ch.sel, ch.end, ch.terminal)
		if err != nil {
			return sqlCond{}, err
		}
		if ok {
			live = append(live, ch)
		}
	}
	switch len(live) {
	case 0:
		if staticCompare(opToXPath(op), 0.0, n) {
			return condTrue, nil
		}
		return condFalse, nil
	case 1:
		sub := live[0].sel
		sub.Cols = []sqlast.SelectCol{{Expr: &sqlast.CountStar{}}}
		return dyn(&sqlast.Binary{Op: op,
			L: &sqlast.Subquery{Select: sub}, R: numLit(n)}), nil
	default:
		return sqlCond{}, fmt.Errorf("count() over a path with multiple candidate relations is not supported")
	}
}

// positionTerm classifies one side of a positional comparison:
// 'n' = number, 'p' = position(), 'l' = last().
type posTerm struct {
	kind byte
	num  float64
}

func positionTerm(e xpath.Expr) (posTerm, bool) {
	switch x := e.(type) {
	case *xpath.Number:
		return posTerm{kind: 'n', num: x.Value}, true
	case *xpath.Call:
		switch x.Name {
		case "position":
			return posTerm{kind: 'p'}, true
		case "last":
			return posTerm{kind: 'l'}, true
		}
	}
	return posTerm{}, false
}

// positionTermExpr renders a positional term as a SQL expression over
// same-relation sibling counts: position() is (preceding siblings)+1
// and last() the total sibling count. Requires a child-axis,
// non-wildcard prominent step (see DESIGN.md).
func (b *builder) positionTermExpr(t posTerm, ctx chainCtx) (sqlast.Expr, error) {
	if t.kind == 'n' {
		return numLit(t.num), nil
	}
	step := ctx.lastStep
	if step == nil || step.Axis != xpath.Child || step.Test != xpath.NameTest || step.Name == "" {
		return nil, fmt.Errorf("positional predicates are only supported on child-axis name tests")
	}
	rel := shred.RelName(ctx.node.Name)
	alias := b.newAlias(rel)
	sub := &sqlast.Select{
		Cols: []sqlast.SelectCol{{Expr: &sqlast.CountStar{}}},
		From: []sqlast.TableRef{{Table: rel, Alias: alias}},
	}
	sub.AddConjunct(sqlast.Eq(sqlast.C(alias, shred.ColPar), sqlast.C(ctx.alias, shred.ColPar)))
	if t.kind == 'p' {
		sub.AddConjunct(&sqlast.Binary{Op: sqlast.OpLt,
			L: sqlast.C(alias, shred.ColDewey), R: sqlast.C(ctx.alias, shred.ColDewey)})
		return &sqlast.Binary{Op: sqlast.OpAdd, L: &sqlast.Subquery{Select: sub}, R: sqlast.Int(1)}, nil
	}
	return &sqlast.Subquery{Select: sub}, nil
}

// positional translates '[n]' / '[position() OP n]'.
func (b *builder) positional(op sqlast.BinOp, n float64, ctx chainCtx) (sqlCond, error) {
	pos, err := b.positionTermExpr(posTerm{kind: 'p'}, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	return dyn(&sqlast.Binary{Op: op, L: pos, R: numLit(n)}), nil
}

// lastPredicate translates a bare '[last()]' ([position() = last()]).
func (b *builder) lastPredicate(ctx chainCtx) (sqlCond, error) {
	pos, err := b.positionTermExpr(posTerm{kind: 'p'}, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	total, err := b.positionTermExpr(posTerm{kind: 'l'}, ctx)
	if err != nil {
		return sqlCond{}, err
	}
	return dyn(sqlast.Eq(pos, total)), nil
}

func numLit(f float64) sqlast.Expr {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return sqlast.Int(int64(f))
	}
	return &sqlast.FloatLit{Value: f}
}

func opToXPath(op sqlast.BinOp) xpath.Op {
	switch op {
	case sqlast.OpEq:
		return xpath.OpEq
	case sqlast.OpNe:
		return xpath.OpNe
	case sqlast.OpLt:
		return xpath.OpLt
	case sqlast.OpLe:
		return xpath.OpLe
	case sqlast.OpGt:
		return xpath.OpGt
	default:
		return xpath.OpGe
	}
}
