// Seeded violations for the errdrop analyzer: discarded error
// returns.
package a

import "errors"

func fail() error { return errors.New("boom") }

func load() (int, error) { return 0, errors.New("boom") }

func bareCall() {
	fail() // want `fail returns an error that is discarded`
}

func blankedInTuple() int {
	v, _ := load() // want `error result of load blanked while other results are kept`
	return v
}

type closer struct{}

func (closer) Close() error { return nil }

func methodCall(c closer) {
	c.Close() // want `c.Close returns an error that is discarded`
}

func detached() {
	go fail() // want `go fail discards the callee's error result`
}

type flusher struct{}

func (flusher) Flush() error { return errors.New("boom") }

func deferredDrop(f flusher) {
	defer fail()    // want `defer fail discards the callee's error result`
	defer f.Flush() // want `defer f.Flush discards the callee's error result`
}

// A bare drop inside a deferred func literal is still a drop: the
// literal's body is ordinary statement context.
func deferredLiteralDrop(f flusher) {
	defer func() {
		f.Flush() // want `f.Flush returns an error that is discarded`
	}()
}

// Blanking errors.Join pierces the `_ =` opt-out: the collection was
// built only to be handled.
func joinedThenDropped(errs []error) {
	_ = errors.Join(errs...) // want `errors.Join result blanked; the joined errors are lost`
}
