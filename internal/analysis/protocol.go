// Shared infrastructure for the publication-protocol analyzers
// (snapfreeze, guardedby, walorder): memoized per-package call graphs,
// the //guardedby: and //walorder: annotation grammar, and the
// lockset replay that extends lockscope's intra-procedural dataflow
// across static call edges.
//
// Annotation grammar (all on struct fields unless noted):
//
//	//guardedby:<mutex>          writes to this field require the named
//	                             sibling sync.Mutex/RWMutex to be in the
//	                             may-held lockset
//	//guardedby:caller(<mutex>)  the struct is externally serialized:
//	                             its own methods are exempt, but every
//	                             cross-package call of a mutating method
//	                             must hold a mutex with this name (or a
//	                             provably fresh receiver)
//	//walorder:publish           this atomic.Pointer field is the
//	                             snapshot publication point walorder and
//	                             snapfreeze reason about
//	//walorder:replay -- <why>   (on a function's doc) the function
//	                             publishes state reconstructed from
//	                             already-durable WAL records; the
//	                             Append→Sync precondition is met by
//	                             definition
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
)

// cgMemo caches one call graph per type-checked package, shared by the
// three protocol analyzers within a process (xvet runs them back to
// back on the same loaded package).
var cgMemo sync.Map // *types.Package -> *callgraph.Graph

func graphForPkg(path string, fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info) *callgraph.Graph {
	if g, ok := cgMemo.Load(tpkg); ok {
		return g.(*callgraph.Graph)
	}
	g := callgraph.Build(path, fset, files, tpkg, info)
	cgMemo.Store(tpkg, g)
	return g
}

// callGraph returns the (memoized) call graph of the pass's package.
func (p *Pass) callGraph() *callgraph.Graph {
	return graphForPkg(p.Pkg.Path(), p.Fset, p.Files, p.Pkg, p.TypesInfo)
}

// depGraph returns the call graph of an already-loaded dependency.
func depGraph(dep *Package) *callgraph.Graph {
	return graphForPkg(dep.Path, dep.Fset, dep.Files, dep.Types, dep.Info)
}

// depPackages returns the module-internal (loader-resolved) direct
// imports of the pass's package, with their ASTs.
func (p *Pass) depPackages() []*Package {
	if p.pkg == nil || p.pkg.ldr == nil || p.Pkg == nil {
		return nil
	}
	var out []*Package
	for _, imp := range p.Pkg.Imports() {
		if dep := p.pkg.ldr.loaded(imp.Path()); dep != nil {
			out = append(out, dep)
		}
	}
	return out
}

// A guardSpec is one parsed //guardedby: annotation.
type guardSpec struct {
	field  *types.Var // the annotated field
	owner  *types.Named
	name   string // mutex field name that must be held
	caller bool   // caller(<name>) form: serialization owed by callers
	pos    token.Pos
}

// A badAnn is a malformed annotation, reported by the analyzer that
// owns the directive family.
type badAnn struct {
	pos token.Pos
	msg string
}

// protoAnnotations is everything the protocol analyzers read from one
// package's comments.
type protoAnnotations struct {
	guards     map[*types.Var]*guardSpec // //guardedby: fields
	publishes  map[*types.Var]bool       // //walorder:publish fields
	replays    map[*types.Func]string    // //walorder:replay funcs -> reason
	badGuarded []badAnn
	badWAL     []badAnn
}

var annMemo sync.Map // *types.Package -> *protoAnnotations

// protoAnnotationsOf parses (memoized) the protocol annotations of one
// loaded package.
func protoAnnotationsOf(fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info) *protoAnnotations {
	if a, ok := annMemo.Load(tpkg); ok {
		return a.(*protoAnnotations)
	}
	ann := collectProtoAnnotations(files, info)
	annMemo.Store(tpkg, ann)
	return ann
}

func (p *Pass) annotations() *protoAnnotations {
	return protoAnnotationsOf(p.Fset, p.Files, p.Pkg, p.TypesInfo)
}

func depAnnotations(dep *Package) *protoAnnotations {
	return protoAnnotationsOf(dep.Fset, dep.Files, dep.Types, dep.Info)
}

func collectProtoAnnotations(files []*ast.File, info *types.Info) *protoAnnotations {
	ann := &protoAnnotations{
		guards:    map[*types.Var]*guardSpec{},
		publishes: map[*types.Var]bool{},
		replays:   map[*types.Func]string{},
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				ann.parseFuncDirectives(d, info)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					tn, _ := info.Defs[ts.Name].(*types.TypeName)
					var named *types.Named
					if tn != nil {
						named, _ = tn.Type().(*types.Named)
					}
					ann.parseStructDirectives(st, named, info)
				}
			}
		}
	}
	return ann
}

func (ann *protoAnnotations) parseFuncDirectives(fd *ast.FuncDecl, info *types.Info) {
	if fd.Doc == nil {
		return
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//walorder:replay")
		if !ok {
			continue
		}
		reason := ""
		if r, okr := strings.CutPrefix(strings.TrimSpace(rest), "--"); okr {
			reason = strings.TrimSpace(r)
		}
		if reason == "" {
			ann.badWAL = append(ann.badWAL, badAnn{c.Pos(),
				"malformed //walorder:replay directive: give a reason after ` -- ` " +
					"explaining why the published state is already durable"})
			continue
		}
		if fn, okf := info.Defs[fd.Name].(*types.Func); okf {
			ann.replays[fn] = reason
		}
	}
}

func (ann *protoAnnotations) parseStructDirectives(st *ast.StructType, owner *types.Named, info *types.Info) {
	directive := func(field *ast.Field) []*ast.Comment {
		var cs []*ast.Comment
		if field.Doc != nil {
			cs = append(cs, field.Doc.List...)
		}
		if field.Comment != nil {
			cs = append(cs, field.Comment.List...)
		}
		return cs
	}
	for _, field := range st.Fields.List {
		for _, c := range directive(field) {
			switch {
			case strings.HasPrefix(c.Text, "//guardedby:"):
				ann.parseGuard(c, field, st, owner, info)
			case strings.HasPrefix(c.Text, "//walorder:publish"):
				for _, name := range field.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						ann.publishes[v] = true
					}
				}
			}
		}
	}
}

func (ann *protoAnnotations) parseGuard(c *ast.Comment, field *ast.Field, st *ast.StructType, owner *types.Named, info *types.Info) {
	spec := strings.TrimSpace(strings.TrimPrefix(c.Text, "//guardedby:"))
	caller := false
	if inner, ok := strings.CutPrefix(spec, "caller("); ok {
		inner, ok = strings.CutSuffix(inner, ")")
		if !ok {
			ann.badGuarded = append(ann.badGuarded, badAnn{c.Pos(),
				"malformed //guardedby:caller(...) directive: unbalanced parenthesis"})
			return
		}
		spec = strings.TrimSpace(inner)
		caller = true
	}
	if spec == "" || strings.ContainsAny(spec, " \t(){}") {
		ann.badGuarded = append(ann.badGuarded, badAnn{c.Pos(),
			"malformed //guardedby: directive: want //guardedby:<mutexField> or //guardedby:caller(<mutexName>)"})
		return
	}
	// The plain form must name a sibling sync.Mutex/RWMutex field;
	// caller() names a mutex owned by callers, unresolvable here.
	if !caller && !structHasMutexField(st, info, spec) {
		ann.badGuarded = append(ann.badGuarded, badAnn{c.Pos(),
			"//guardedby:" + spec + " names no sibling sync.Mutex/RWMutex field; " +
				"use //guardedby:caller(" + spec + ") if the mutex lives with the callers"})
		return
	}
	for _, name := range field.Names {
		if v, ok := info.Defs[name].(*types.Var); ok {
			ann.guards[v] = &guardSpec{field: v, owner: owner, name: spec, caller: caller, pos: c.Pos()}
		}
	}
}

func structHasMutexField(st *ast.StructType, info *types.Info, name string) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name != name {
				continue
			}
			if v, ok := info.Defs[n].(*types.Var); ok && isMutexType(v.Type()) {
				return true
			}
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// atomicStoreLoad classifies call as <recv>.Store(v) / <recv>.Load()
// on a sync/atomic pointer/value type, returning the receiver
// expression, the stored value (nil for Load), and the field object
// when the receiver is a field selector.
func atomicStoreLoad(info *types.Info, call *ast.CallExpr) (recv ast.Expr, stored ast.Expr, field *types.Var, isStore, ok bool) {
	fun, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return nil, nil, nil, false, false
	}
	switch fun.Sel.Name {
	case "Store":
		isStore = true
	case "Load":
	default:
		return nil, nil, nil, false, false
	}
	sel, okS := info.Selections[fun]
	if !okS || sel.Kind() != types.MethodVal {
		return nil, nil, nil, false, false
	}
	m, okF := sel.Obj().(*types.Func)
	if !okF || m.Pkg() == nil || m.Pkg().Path() != "sync/atomic" {
		return nil, nil, nil, false, false
	}
	recv = fun.X
	if isStore && len(call.Args) == 1 {
		stored = call.Args[0]
	}
	if rs, okRS := ast.Unparen(recv).(*ast.SelectorExpr); okRS {
		if v, okV := info.Uses[rs.Sel].(*types.Var); okV {
			field = v
		}
	} else if id, okID := ast.Unparen(recv).(*ast.Ident); okID {
		if v, okV := info.Uses[id].(*types.Var); okV {
			field = v
		}
	}
	return recv, stored, field, isStore, true
}

// chainBase walks a selector/index/deref chain ("db.pers.log",
// "st.rows[i]") to its base identifier, or nil.
func chainBase(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// lockNameHeld reports whether any lock in env matches name: either an
// entry-inherited bare name or a rendered receiver chain whose last
// component is the name ("t.db.writeMu" matches "writeMu").
func lockNameHeld(env lockEnv, name string) bool {
	if env[name] {
		return true
	}
	for k := range env {
		if i := strings.LastIndexByte(k, '.'); i >= 0 && k[i+1:] == name {
			return true
		}
	}
	return false
}

// lockNames reduces a lockset to bare mutex names for propagation
// across call edges (the callee sees "writeMu held", not the caller's
// receiver spelling).
func lockNames(env lockEnv) map[string]bool {
	out := map[string]bool{}
	for k := range env {
		if i := strings.LastIndexByte(k, '.'); i >= 0 {
			out[k[i+1:]] = true
		} else {
			out[k] = true
		}
	}
	return out
}

// lockReplay runs lockscope's may-held dataflow over one function body
// seeded with an entry lockset, then replays each block calling visit
// with every node and the lockset in force when it executes. Releases
// drop both the rendered key and its bare name (an entry-inherited
// lock unlocked under any receiver spelling is gone either way).
func lockReplay(pass *Pass, name string, body *ast.BlockStmt, entry map[string]bool, visit func(n ast.Node, env lockEnv)) {
	g := cfg.New(name, body)
	n := len(g.Blocks)
	in := make([]lockEnv, n)
	out := make([]lockEnv, n)
	seed := lockEnv{}
	for k := range entry {
		seed[k] = true
	}
	in[g.Entry.Index] = seed
	work := []*cfg.Block{g.Entry}
	inWork := make([]bool, n)
	inWork[g.Entry.Index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false
		if b != g.Entry {
			env := lockEnv{}
			for _, p := range b.Preds {
				for k := range out[p.Index] {
					env[k] = true
				}
			}
			in[b.Index] = env
		}
		env := cloneLockEnv(in[b.Index])
		for _, node := range b.Nodes {
			protoLockTransfer(pass, node, env)
		}
		if !lockEnvEqual(env, out[b.Index]) {
			out[b.Index] = env
			for _, s := range b.Succs {
				if !inWork[s.Index] {
					inWork[s.Index] = true
					work = append(work, s)
				}
			}
		}
	}
	for _, b := range g.Blocks {
		if in[b.Index] == nil {
			continue
		}
		env := cloneLockEnv(in[b.Index])
		for _, node := range b.Nodes {
			visit(node, env)
			protoLockTransfer(pass, node, env)
		}
	}
}

// protoLockTransfer is lockTransfer with name-aware release: unlocking
// c.mu also retires an entry-inherited bare "mu".
func protoLockTransfer(pass *Pass, n ast.Node, env lockEnv) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false // deferred release happens at return, not here
		case *ast.CallExpr:
			if key, kind := mutexOp(pass, x); kind == lockAcquire {
				env[key] = true
			} else if kind == lockRelease {
				delete(env, key)
				if i := strings.LastIndexByte(key, '.'); i >= 0 {
					delete(env, key[i+1:])
				}
			}
		}
		return true
	})
}

// entryLocksets computes, for every node of the package call graph,
// the set of mutex names held at entry on EVERY static call path: the
// intersection over static call sites of the caller's lockset at the
// site, reduced to bare names. Exported functions, functions reachable
// dynamically (escape/interface/funcvalue in-edges), and call-graph
// roots get the empty set — their callers are unknown, so nothing may
// be assumed. This is the "extend lockscope's replay across static
// call edges" half of guardedby.
func entryLocksets(pass *Pass, g *callgraph.Graph) map[*callgraph.Node]map[string]bool {
	// Universe for the ⊤ initialization: every mutex name that can
	// appear. A decreasing fixpoint over finite sets terminates.
	top := map[string]bool{}
	for _, n := range g.Nodes {
		if n.Body == nil {
			continue
		}
		ast.Inspect(n.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if key, kind := mutexOp(pass, call); kind == lockAcquire {
					for name := range lockNames(lockEnv{key: true}) {
						top[name] = true
					}
				}
			}
			return true
		})
	}
	cloneTop := func() map[string]bool {
		c := make(map[string]bool, len(top))
		for k := range top {
			c[k] = true
		}
		return c
	}

	unknownEntry := func(n *callgraph.Node) bool {
		if n.Obj != nil && n.Obj.Exported() {
			return true
		}
		static := 0
		for _, e := range n.In {
			if e.Kind == callgraph.Static {
				static++
			} else {
				return true // escapes / dynamic dispatch: unknown context
			}
		}
		return static == 0
	}

	entry := map[*callgraph.Node]map[string]bool{}
	for _, n := range g.Nodes {
		if unknownEntry(n) {
			entry[n] = map[string]bool{}
		} else {
			entry[n] = cloneTop()
		}
	}

	// acquires marks callers that lock anything themselves; a caller
	// with an empty entry and no acquires has the empty lockset at
	// every site, which needs no CFG replay to know.
	acquires := map[*callgraph.Node]bool{}
	for _, n := range g.Nodes {
		if n.Body == nil {
			continue
		}
		ast.Inspect(n.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if _, kind := mutexOp(pass, call); kind == lockAcquire {
					acquires[n] = true
				}
			}
			return true
		})
	}

	// Recompute each static call site's name-reduced lockset under the
	// caller's current entry, intersecting into the callee, until the
	// (only ever shrinking) entries stabilize.
	changed := true
	for changed {
		changed = false
		for _, caller := range g.Nodes {
			if caller.Body == nil || len(caller.Out) == 0 {
				continue
			}
			var siteNames func(site ast.Node) map[string]bool
			if len(entry[caller]) == 0 && !acquires[caller] {
				empty := map[string]bool{}
				siteNames = func(ast.Node) map[string]bool { return empty }
			} else {
				siteEnv := map[ast.Node]map[string]bool{}
				lockReplay(pass, caller.Name, caller.Body, entry[caller], func(n ast.Node, env lockEnv) {
					names := lockNames(env)
					ast.Inspect(n, func(m ast.Node) bool {
						if lit, isLit := m.(*ast.FuncLit); isLit {
							// Immediately-invoked literal edges use the
							// FuncLit itself as their site.
							if _, exists := siteEnv[lit]; !exists {
								siteEnv[lit] = names
							}
							return false
						}
						if call, ok := m.(*ast.CallExpr); ok {
							if _, exists := siteEnv[call]; !exists {
								siteEnv[call] = names
							}
						}
						return true
					})
				})
				siteNames = func(site ast.Node) map[string]bool {
					if names, ok := siteEnv[site]; ok {
						return names
					}
					return map[string]bool{} // unreachable site: assume nothing
				}
			}
			for _, e := range caller.Out {
				if e.Kind != callgraph.Static {
					continue
				}
				names := siteNames(e.Site)
				cur := entry[e.Callee]
				for k := range cur {
					if !names[k] {
						delete(cur, k)
						changed = true
					}
				}
			}
		}
	}
	return entry
}
