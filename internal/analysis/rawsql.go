package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
)

// RawSQL flags SQL text assembled with fmt verbs or string
// concatenation outside the sqlast renderer. Every statement the
// engine executes must be built as an internal/sqlast tree and
// rendered by render.go — the single sanctioned emitter — so that the
// Section 4 translation rules stay auditable in one place and no
// query is ever spliced together from fragments.
var RawSQL = &Analyzer{
	Name: "rawsql",
	Doc: "flag SQL assembled via fmt.Sprintf/Fprintf or string concatenation " +
		"outside internal/sqlast/render.go; build statements with the sqlast AST instead",
	Run: runRawSQL,
}

// sqlTextRe recognizes string literals that are unmistakably SQL
// fragments. Single weak keywords ("from", "join") are deliberately
// not matched: ordinary prose uses them.
var sqlTextRe = regexp.MustCompile(`(?is)(` +
	`\bselect\b.*\bfrom\b` +
	`|\binsert\s+into\b` +
	`|\bcreate\s+(table|index)\b` +
	`|\bdelete\s+from\b` +
	`|\bupdate\s+\w+\s+set\b` +
	`|\border\s+by\b` +
	`|\bgroup\s+by\b` +
	`|\bunion\s+all\b` +
	`|\bwhere\b.*(=|<|>|\bbetween\b|\blike\b)` +
	`)`)

// fmt functions that produce or emit strings. Errorf is excluded:
// error messages legitimately quote SQL.
var sqlFmtFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Appendf": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
}

func runRawSQL(pass *Pass) error {
	for _, f := range pass.Files {
		if isSanctionedSQLRenderer(pass, f) {
			continue
		}
		reported := map[ast.Node]bool{}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			switch x := n.(type) {
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok &&
					pass.importedPkg(sel.X) == "fmt" && sqlFmtFuncs[sel.Sel.Name] {
					if sqlTextRe.MatchString(constStrings(pass, x.Args...)) {
						pass.Reportf(x.Pos(),
							"SQL assembled with fmt.%s; build it with the internal/sqlast AST and render.go",
							sel.Sel.Name)
					}
				}
			case *ast.BinaryExpr:
				if x.Op != token.ADD || reported[n] {
					break
				}
				// Only consider the outermost + of a concatenation chain.
				if len(stack) > 0 {
					if p, ok := stack[len(stack)-1].(*ast.BinaryExpr); ok && p.Op == token.ADD {
						break
					}
				}
				if isStringExpr(pass, x) && sqlTextRe.MatchString(constStrings(pass, flattenAdd(x)...)) {
					reported[n] = true
					pass.Reportf(x.Pos(),
						"SQL assembled by string concatenation; build it with the internal/sqlast AST and render.go")
				}
			case *ast.AssignStmt:
				if x.Tok == token.ADD_ASSIGN && len(x.Rhs) == 1 &&
					isStringExpr(pass, x.Rhs[0]) && sqlTextRe.MatchString(constStrings(pass, x.Rhs[0])) {
					pass.Reportf(x.Pos(),
						"SQL assembled by string concatenation; build it with the internal/sqlast AST and render.go")
				}
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil
}

// isSanctionedSQLRenderer reports whether f is internal/sqlast's
// render.go, the one file allowed to emit SQL text.
func isSanctionedSQLRenderer(pass *Pass, f *ast.File) bool {
	if !strings.HasSuffix(pass.Pkg.Path(), "sqlast") {
		return false
	}
	return filepath.Base(pass.Fset.Position(f.Pos()).Filename) == "render.go"
}

// constStrings concatenates the constant string values found in the
// expressions (space-separated), for keyword matching.
func constStrings(pass *Pass, exprs ...ast.Expr) string {
	var b strings.Builder
	for _, e := range exprs {
		if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			b.WriteString(constant.StringVal(tv.Value))
			b.WriteByte(' ')
		}
	}
	return b.String()
}

func isStringExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// flattenAdd returns the leaves of a left-deep + chain.
func flattenAdd(e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.ADD {
		return append(flattenAdd(b.X), flattenAdd(b.Y)...)
	}
	return []ast.Expr{e}
}
