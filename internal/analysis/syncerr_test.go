package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestSyncErr(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SyncErr, "syncerr/a", "syncerr/ok")
}

// The durability-critical packages named by the fsyncgate invariant —
// the WAL, the engine's checkpoint writer, and every file-writing CLI
// tool — must stay clean under syncerr.
func TestSyncErrDurabilityPathsClean(t *testing.T) {
	expectClean(t, analysis.SyncErr,
		"repro/internal/wal", "repro/internal/engine",
		"repro/cmd/xsql", "repro/cmd/xload", "repro/cmd/xgen", "repro/cmd/xpsql")
}
