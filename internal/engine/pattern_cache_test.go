package engine

import (
	"fmt"
	"testing"
)

// resetPatternCache empties the shared cache so size assertions are
// deterministic regardless of test order.
func resetPatternCache() {
	patternCache.mu.Lock()
	patternCache.m = make(map[string]*matcher)
	patternCache.mu.Unlock()
}

// TestPatternCacheReuseAcrossQueries verifies the patternCache
// discipline end to end: running the same REGEXP_LIKE query twice
// (and the same pattern via compilePattern directly) reuses one
// compiled matcher instead of recompiling per query or per row.
func TestPatternCacheReuseAcrossQueries(t *testing.T) {
	resetPatternCache()
	db := fixtureDB(t)

	const q = "SELECT F.id FROM F WHERE REGEXP_LIKE(F.text, '^[0-9]+$')"
	if _, err := db.RunSQL(q); err != nil {
		t.Fatal(err)
	}
	if got := PatternCacheSize(); got != 1 {
		t.Fatalf("after first query: cache size = %d, want 1", got)
	}
	if _, err := db.RunSQL(q); err != nil {
		t.Fatal(err)
	}
	if got := PatternCacheSize(); got != 1 {
		t.Fatalf("after second query: cache size = %d, want 1 (matcher must be reused)", got)
	}

	m1, err := compilePattern("^[0-9]+$")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := compilePattern("^[0-9]+$")
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("compilePattern returned distinct matchers for one pattern")
	}
}

// TestPatternCacheBounded verifies the eviction cap: an unbounded
// stream of distinct patterns cannot grow the cache past
// patternCacheCap, and the cache keeps working after a flush.
func TestPatternCacheBounded(t *testing.T) {
	resetPatternCache()
	for i := 0; i < patternCacheCap+10; i++ {
		if _, err := compilePattern(fmt.Sprintf("^row%d$", i)); err != nil {
			t.Fatal(err)
		}
		if got := PatternCacheSize(); got > patternCacheCap {
			t.Fatalf("cache size %d exceeds cap %d", got, patternCacheCap)
		}
	}
	// The overflow flushed; the cache must still serve hits.
	m1, err := compilePattern("^again$")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := compilePattern("^again$")
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("matcher not cached after overflow flush")
	}
}
