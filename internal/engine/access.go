package engine

// The uniform scan-operator contract: every access path pushes the
// candidate row ids of its joinStep under the current bindings, in
// the executor's canonical order, recording probes and governor
// charges against the step's scan OpStats. yield returns false to
// stop early. This file is the decomposition of the former monolithic
// forEachRow switch into one method per access kind.

// rowYield receives one candidate row id; it returns false to stop
// the enumeration early.
type rowYield func(id int64) (bool, error)

// forEachRow dispatches to the concrete access path's enumerate
// method. The executor's row loops call this instead of the
// accessPath interface method so escape analysis can keep their
// yield closures off the heap: an interface call would force a
// heap-allocated closure per join binding, which is measurable on
// the paper's join-heavy Edge queries.
func forEachRow(ec *execCtx, e env, s *joinStep, st *OpStats, yield rowYield) error {
	switch a := s.access.(type) {
	case fullScan:
		return a.enumerate(ec, e, s, st, yield)
	case *indexEq:
		return a.enumerate(ec, e, s, st, yield)
	case *indexPrefixes:
		return a.enumerate(ec, e, s, st, yield)
	case *hashEq:
		return a.enumerate(ec, e, s, st, yield)
	case *fatHash:
		return a.h.enumerate(ec, e, s, st, yield)
	case *indexRange:
		return a.enumerate(ec, e, s, st, yield)
	default:
		panic("engine: unknown access path")
	}
}

func (fullScan) enumerate(ec *execCtx, e env, s *joinStep, st *OpStats, yield rowYield) error {
	for id := range s.table.Rows {
		cont, err := yield(int64(id))
		if err != nil || !cont {
			return err
		}
	}
	return nil
}

func (a *indexEq) enumerate(ec *execCtx, e env, s *joinStep, st *OpStats, yield rowYield) error {
	var key []byte
	for _, kx := range a.keys {
		v, err := kx.eval(ec, e)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return nil
		}
		key = encodeValue(key, v)
	}
	st.probe()
	for _, id := range a.ix.Tree.Get(key) {
		cont, err := yield(id)
		if err != nil || !cont {
			return err
		}
	}
	return nil
}

func (a *indexPrefixes) enumerate(ec *execCtx, e env, s *joinStep, st *OpStats, yield rowYield) error {
	v, err := a.x.eval(ec, e)
	if err != nil {
		return err
	}
	if v.Kind != KBytes {
		return nil
	}
	for k := 0; k <= len(v.B); k++ {
		// Prefix-match within a possibly composite index: scan the
		// interval covering exactly this first-component value.
		lo := encodeValue(nil, NewBytes(v.B[:k]))
		hi := append(append([]byte(nil), lo...), 0xFF)
		st.probe()
		stop := false
		var scanErr error
		a.ix.Tree.Scan(lo, hi, func(_ []byte, id int64) bool {
			cont, err := yield(id)
			if err != nil {
				scanErr = err
				return false
			}
			stop = !cont
			return cont
		})
		if scanErr != nil || stop {
			return scanErr
		}
	}
	return nil
}

func (a *hashEq) enumerate(ec *execCtx, e env, s *joinStep, st *OpStats, yield rowYield) error {
	v, err := a.key.eval(ec, e)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	key := string(encodeValue(nil, v))
	m, built, bytes, err := s.table.hashFor(a.col, ec.acct)
	if err != nil {
		return err
	}
	if built {
		st.charge(bytes)
		// The build may have consumed a large slice of the deadline;
		// observe it before starting the probe phase instead of
		// waiting out the tick counter.
		if err := ec.checkNow(); err != nil {
			return err
		}
	}
	st.probe()
	for _, id := range m[key] {
		cont, err := yield(id)
		if err != nil || !cont {
			return err
		}
	}
	return nil
}

func (a *fatHash) enumerate(ec *execCtx, e env, s *joinStep, st *OpStats, yield rowYield) error {
	return a.h.enumerate(ec, e, s, st, yield)
}

// The shape methods below describe each access kind for the exported
// plan shape (plantrace.go). They decompile the same key expressions
// enumerate evaluates, so the certificate checker justifies the path
// against exactly what would execute.

func (fullScan) shape(*shapeBuilder, *Table) (AccessShape, error) {
	return AccessShape{Kind: "full-scan"}, nil
}

func (a *indexEq) shape(sb *shapeBuilder, t *Table) (AccessShape, error) {
	as := AccessShape{Kind: "index-eq", Index: a.ix.Name,
		IndexCols: indexColNames(t, a.ix), Col: t.Cols[a.ix.Cols[0]].Name}
	for _, k := range a.keys {
		es, err := sb.expr(k)
		if err != nil {
			return AccessShape{}, err
		}
		as.Keys = append(as.Keys, es)
	}
	return as, nil
}

func (a *indexPrefixes) shape(sb *shapeBuilder, t *Table) (AccessShape, error) {
	key, err := sb.expr(a.x)
	if err != nil {
		return AccessShape{}, err
	}
	return AccessShape{Kind: "index-prefixes", Index: a.ix.Name,
		IndexCols: indexColNames(t, a.ix), Col: t.Cols[a.ix.Cols[0]].Name, Key: key}, nil
}

func (a *hashEq) shape(sb *shapeBuilder, t *Table) (AccessShape, error) {
	key, err := sb.expr(a.key)
	if err != nil {
		return AccessShape{}, err
	}
	return AccessShape{Kind: "hash-eq", Col: t.Cols[a.col].Name, Key: key}, nil
}

func (a *fatHash) shape(sb *shapeBuilder, t *Table) (AccessShape, error) {
	as, err := a.h.shape(sb, t)
	if err != nil {
		return AccessShape{}, err
	}
	as.Kind = "fat-hash"
	return as, nil
}

func (a *indexRange) shape(sb *shapeBuilder, t *Table) (AccessShape, error) {
	as := AccessShape{Kind: "index-range", Index: a.ix.Name,
		IndexCols: indexColNames(t, a.ix), Col: t.Cols[a.ix.Cols[0]].Name,
		LoStrict: a.loStrict, HiStrict: a.hiStrict}
	var err error
	if a.lo != nil {
		if as.Lo, err = sb.expr(a.lo); err != nil {
			return AccessShape{}, err
		}
	}
	if a.hi != nil {
		if as.Hi, err = sb.expr(a.hi); err != nil {
			return AccessShape{}, err
		}
	}
	return as, nil
}

func (a *indexRange) enumerate(ec *execCtx, e env, s *joinStep, st *OpStats, yield rowYield) error {
	var lo, hi []byte
	if a.lo != nil {
		v, err := a.lo.eval(ec, e)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return nil
		}
		lo = encodeValue(nil, v)
		if a.loStrict {
			lo = append(lo, 0xFF)
		}
	}
	if a.hi != nil {
		v, err := a.hi.eval(ec, e)
		if err != nil {
			return err
		}
		if v.IsNull() {
			return nil
		}
		hi = encodeValue(nil, v)
		if !a.hiStrict {
			hi = append(hi, 0xFF)
		}
	}
	st.probe()
	var scanErr error
	a.ix.Tree.Scan(lo, hi, func(_ []byte, id int64) bool {
		cont, err := yield(id)
		if err != nil {
			scanErr = err
			return false
		}
		return cont
	})
	return scanErr
}
