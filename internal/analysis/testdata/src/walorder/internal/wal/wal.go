// Package wal is a miniature log for the walorder fixtures: Append
// writes a frame, Sync makes it durable, Commit does both.
package wal

import "os"

type Log struct {
	f    *os.File
	next uint64
}

func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{f: f}, nil
}

func (l *Log) Append(p []byte) (uint64, error) {
	lsn := l.next
	l.next++
	_, err := l.f.Write(p)
	return lsn, err
}

func (l *Log) Sync() error { return l.f.Sync() }

// Commit appends and syncs: durable before the caller publishes.
func (l *Log) Commit(p []byte) (uint64, error) {
	lsn, err := l.Append(p)
	if err != nil {
		return 0, err
	}
	if err := l.Sync(); err != nil {
		return 0, err
	}
	return lsn, nil
}

// FastCommit drops the fsync a commit path depends on.
func (l *Log) FastCommit(p []byte) (uint64, error) {
	return l.Append(p) // want `appends WAL frames but never syncs`
}
