# make check mirrors .github/workflows/ci.yml locally.
GO ?= go

.PHONY: check build fmtcheck vet xvet test race bench-smoke

check: build fmtcheck vet xvet test race

build:
	$(GO) build ./...

fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The custom invariant analyzers (rawsql, deweycmp, regexploop,
# errdrop); -novet because `make vet` already ran the standard passes.
xvet:
	$(GO) run ./cmd/xvet -novet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs a tiny Figure 3 pass in both execution modes
# (serial, then morsel-parallel) with oracle verification on: a fast
# end-to-end check that every measured configuration still returns the
# native evaluator's node sets.
bench-smoke:
	$(GO) run ./cmd/xbench -experiment fig3 -scale 0.02 -reps 1 -budget 30s
	$(GO) run ./cmd/xbench -experiment fig3 -scale 0.02 -reps 1 -budget 30s -parallel
