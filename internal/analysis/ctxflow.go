package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/cfg"
)

// CtxFlow enforces context propagation through the engine's execution
// path. The engine's deadline machinery has a deliberate fast path —
// checkDeadline short-circuits when both the deadline and the context
// are nil — so a context must either be the caller's (cancellation
// works) or nil (fast path works). context.Background() is the worst
// of both: it defeats the nil fast path while never cancelling.
// Within internal/engine and xrel, a function that takes a
// context.Context must hand exactly that context (or a derived one)
// to every context-accepting callee on every path.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "a context.Context parameter in internal/engine or xrel must flow to every " +
		"ctx-accepting callee on every path; context.Background()/TODO() are banned " +
		"(they defeat the engine's nil-context fast path without enabling cancellation)",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if !ctxFlowScoped(pass.Pkg.Path()) {
		return nil
	}
	// Rule 1: no context.Background()/TODO() anywhere in scope.
	pass.inspect(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && pass.importedPkg(sel.X) == "context" {
			if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
				pass.Reportf(call.Pos(),
					"context.%s() defeats the engine's nil-context fast path without enabling "+
						"cancellation; pass nil (no context) or thread the caller's ctx",
					sel.Sel.Name)
			}
		}
		return true
	})
	// Rules 2 and 3: per-function dataflow for declared ctx parameters.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParam := ctxParamVar(pass, fd)
			if ctxParam == nil {
				continue
			}
			checkCtxFunc(pass, fd, ctxParam)
		}
	}
	return nil
}

func ctxFlowScoped(path string) bool {
	return strings.HasSuffix(path, "internal/engine") || strings.HasSuffix(path, "xrel")
}

// ctxParamVar returns the *types.Var of the function's context.Context
// parameter, or nil (blank and unnamed parameters are exempt: they
// declare intent to drop the context, e.g. interface adapters).
func ctxParamVar(pass *Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			v, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if ok && isContextType(v.Type()) {
				return v
			}
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxFunc verifies that within fd every context-typed call
// argument evaluates to the ctx parameter (or a context derived from
// it) on all paths, and that the parameter is used at all.
func checkCtxFunc(pass *Pass, fd *ast.FuncDecl, ctxParam *types.Var) {
	// Rule 3: dropped context — the parameter is never read.
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctxParam {
			used = true
		}
		return !used
	})
	if !used {
		pass.Reportf(ctxParam.Pos(),
			"context parameter %s is dropped: no callee receives it and no deadline is read; "+
				"thread it through or rename it _ to declare the drop", ctxParam.Name())
		return
	}

	g := cfg.New(fd.Name.Name, fd.Body)
	reach := cfg.Reaching(g, pass.TypesInfo, []*types.Var{ctxParam}, fd.Body)
	seed := map[*types.Var]cfg.Value{ctxParam: cfg.Yes}
	classify := func(e ast.Expr, eval func(ast.Expr) cfg.Value) cfg.Value {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return cfg.Bottom
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || pass.importedPkg(sel.X) != "context" {
			return cfg.Bottom
		}
		switch sel.Sel.Name {
		case "WithCancel", "WithTimeout", "WithDeadline", "WithValue":
			// Deriving preserves the caller's cancellation signal.
			if len(call.Args) > 0 {
				return eval(call.Args[0])
			}
		case "Background", "TODO":
			return cfg.No
		}
		return cfg.Bottom
	}
	taint := cfg.SolveTaint(g, pass.TypesInfo, seed, reach, classify)

	// Rule 2: every context-typed argument slot of every call in the
	// function body (function literals are separate scopes and keep
	// their captured ctx by construction) must carry the parameter.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate scope; not pushed (no closing nil call)
		}
		if call, ok := n.(*ast.CallExpr); ok {
			checkCtxCall(pass, g, taint, stack, call, ctxParam)
		}
		stack = append(stack, n)
		return true
	})
}

func checkCtxCall(pass *Pass, g *cfg.Graph, taint *cfg.Taint, stack []ast.Node, call *ast.CallExpr, ctxParam *types.Var) {
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	stmt, blk := g.BlockOfStack(append(stack[:len(stack):len(stack)], call))
	if blk == nil {
		return
	}
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		if !isContextType(sig.Params().At(i).Type()) {
			continue
		}
		arg := call.Args[i]
		switch taint.EvalAt(stmt, arg) {
		case cfg.Yes:
			// The parameter (or a derivation) flows here on all paths.
		case cfg.Mixed:
			pass.Reportf(arg.Pos(),
				"context argument carries %s only on some paths; the callee loses the "+
					"caller's deadline on the others", ctxParam.Name())
		default:
			pass.Reportf(arg.Pos(),
				"context argument does not carry the function's ctx parameter %s; "+
					"the callee cannot observe the caller's cancellation", ctxParam.Name())
		}
	}
}

// callSignature resolves the static signature of a call, or nil for
// conversions and builtins.
func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	if tv.IsType() {
		return nil // conversion
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}
