package xrel_test

import (
	"fmt"
	"strings"

	"repro/xrel"
)

// Example reproduces the paper's Figure 1 / Table 3 walk-through: a
// schema, a conforming document, and the SQL the PPF translation
// emits for '/A[@x=3]/B/C//F'.
func Example() {
	s, err := xrel.ParseCompactSchema(`
!root A
A -> B @x
B -> C G
C -> D E
E -> F
G -> G
F #text
D #text`)
	if err != nil {
		panic(err)
	}
	store, err := xrel.Open(s)
	if err != nil {
		panic(err)
	}
	doc := `<A x="3"><B><C><D>4</D></C><C><E><F>2</F><F>7</F></E></C><G/></B><B><G><G/></G></B></A>`
	if _, err := store.LoadXML(strings.NewReader(doc)); err != nil {
		panic(err)
	}
	sql, err := store.Translate("/A[@x=3]/B/C//F")
	if err != nil {
		panic(err)
	}
	fmt.Println(sql.Text)
	res, err := store.Query("/A[@x=3]/B/C//F")
	if err != nil {
		panic(err)
	}
	for _, n := range res.Nodes {
		fmt.Printf("node %d at %s\n", n.ID, n.Dewey)
	}
	// Output:
	// SELECT DISTINCT F.id AS id, F.dewey_pos AS dewey_pos FROM A, F WHERE A.x = 3 AND F.dewey_pos BETWEEN A.dewey_pos AND A.dewey_pos || X'FF' ORDER BY F.dewey_pos
	// node 8 at 1.1.2.1.1
	// node 10 at 1.1.2.1.2
}

// ExampleStore_Query shows the Table 5-2 case: a predicate consisting
// only of backward simple paths is answered purely by path filtering.
func ExampleStore_Query() {
	s, _ := xrel.ParseCompactSchema(`
!root r
r -> part
part -> part name
name #text`)
	store, _ := xrel.Open(s)
	store.LoadXML(strings.NewReader(
		`<r><part><name>engine</name><part><name>piston</name></part></part></r>`))
	sql, _ := store.Translate("//name[parent::part/parent::part]")
	fmt.Println(sql.Text)
	res, _ := store.Query("//name[parent::part/parent::part]")
	fmt.Println(len(res.Nodes), "node(s)")
	// Output:
	// SELECT DISTINCT name.id AS id, name.dewey_pos AS dewey_pos FROM name, paths name_paths WHERE name.path_id = name_paths.id AND REGEXP_LIKE(name_paths.path, '^/(.+/)?name$') AND REGEXP_LIKE(name_paths.path, '^.*/part/part/name$') ORDER BY name.dewey_pos
	// 1 node(s)
}
