package engine

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/pathre"
	"repro/internal/sqlast"
)

// env maps effective table names (alias or table name) to the current
// row bound for that table. Nested scopes (correlated subqueries)
// share one env: inner scopes add their bindings on top and remove
// them on exit; name shadowing is rejected at plan time.
type env map[string][]Value

// cexpr is a compiled expression: column references are resolved to
// positions, regex patterns precompiled, subqueries pre-planned.
type cexpr interface {
	eval(ec *execCtx, e env) (Value, error)
}

// scope resolves column references at compile time.
type scope struct {
	parent *scope
	tables map[string]*Table // effective name -> table
	order  []string
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, tables: map[string]*Table{}}
}

func (s *scope) add(name string, t *Table) error {
	for sc := s; sc != nil; sc = sc.parent {
		if _, dup := sc.tables[name]; dup {
			return fmt.Errorf("engine: table name %q shadows an enclosing table; alias it", name)
		}
	}
	s.tables[name] = t
	s.order = append(s.order, name)
	return nil
}

// resolve finds the table and column position for a column reference.
func (s *scope) resolve(c *sqlast.Col) (tableName string, t *Table, pos int, err error) {
	if c.Table != "" {
		for sc := s; sc != nil; sc = sc.parent {
			if t, ok := sc.tables[c.Table]; ok {
				p := t.ColIndex(c.Column)
				if p < 0 {
					return "", nil, 0, fmt.Errorf("engine: no column %q in table %q", c.Column, c.Table)
				}
				return c.Table, t, p, nil
			}
		}
		return "", nil, 0, fmt.Errorf("engine: unknown table %q", c.Table)
	}
	// Unqualified: must be unique across the innermost scope that has a
	// match; ambiguity is an error.
	for sc := s; sc != nil; sc = sc.parent {
		var foundName string
		var foundTable *Table
		foundPos := -1
		for _, name := range sc.order {
			t := sc.tables[name]
			if p := t.ColIndex(c.Column); p >= 0 {
				if foundPos >= 0 {
					return "", nil, 0, fmt.Errorf("engine: ambiguous column %q", c.Column)
				}
				foundName, foundTable, foundPos = name, t, p
			}
		}
		if foundPos >= 0 {
			return foundName, foundTable, foundPos, nil
		}
	}
	return "", nil, 0, fmt.Errorf("engine: unknown column %q", c.Column)
}

// --- compiled expression node types ---

type ccol struct {
	table string
	pos   int
}

func (c *ccol) eval(ec *execCtx, e env) (Value, error) {
	row, ok := e[c.table]
	if !ok {
		return Null, fmt.Errorf("engine: internal: table %q not bound", c.table)
	}
	return row[c.pos], nil
}

type clit struct{ v Value }

func (c *clit) eval(*execCtx, env) (Value, error) { return c.v, nil }

type cbin struct {
	op   sqlast.BinOp
	l, r cexpr
}

func (c *cbin) eval(ec *execCtx, e env) (Value, error) {
	switch c.op {
	case sqlast.OpAnd:
		lv, err := c.l.eval(ec, e)
		if err != nil {
			return Null, err
		}
		if !lv.Truth() {
			return NewBool(false), nil
		}
		rv, err := c.r.eval(ec, e)
		if err != nil {
			return Null, err
		}
		return NewBool(rv.Truth()), nil
	case sqlast.OpOr:
		lv, err := c.l.eval(ec, e)
		if err != nil {
			return Null, err
		}
		if lv.Truth() {
			return NewBool(true), nil
		}
		rv, err := c.r.eval(ec, e)
		if err != nil {
			return Null, err
		}
		return NewBool(rv.Truth()), nil
	}
	lv, err := c.l.eval(ec, e)
	if err != nil {
		return Null, err
	}
	rv, err := c.r.eval(ec, e)
	if err != nil {
		return Null, err
	}
	switch c.op {
	case sqlast.OpEq, sqlast.OpNe, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe:
		cmp, ok := Compare(lv, rv)
		if !ok {
			return NewBool(false), nil
		}
		var res bool
		switch c.op {
		case sqlast.OpEq:
			res = cmp == 0
		case sqlast.OpNe:
			res = cmp != 0
		case sqlast.OpLt:
			res = cmp < 0
		case sqlast.OpLe:
			res = cmp <= 0
		case sqlast.OpGt:
			res = cmp > 0
		case sqlast.OpGe:
			res = cmp >= 0
		}
		return NewBool(res), nil
	case sqlast.OpConcat:
		return Concat(lv, rv)
	case sqlast.OpAdd:
		return Arith('+', lv, rv)
	case sqlast.OpSub:
		return Arith('-', lv, rv)
	case sqlast.OpMul:
		return Arith('*', lv, rv)
	case sqlast.OpDiv:
		return Arith('/', lv, rv)
	case sqlast.OpMod:
		return Arith('%', lv, rv)
	}
	return Null, fmt.Errorf("engine: unknown operator %v", c.op)
}

type cnot struct{ x cexpr }

func (c *cnot) eval(ec *execCtx, e env) (Value, error) {
	v, err := c.x.eval(ec, e)
	if err != nil {
		return Null, err
	}
	return NewBool(!v.Truth()), nil
}

type cbetween struct{ x, lo, hi cexpr }

func (c *cbetween) eval(ec *execCtx, e env) (Value, error) {
	xv, err := c.x.eval(ec, e)
	if err != nil {
		return Null, err
	}
	lov, err := c.lo.eval(ec, e)
	if err != nil {
		return Null, err
	}
	cmpLo, ok := Compare(xv, lov)
	if !ok || cmpLo < 0 {
		return NewBool(false), nil
	}
	hiv, err := c.hi.eval(ec, e)
	if err != nil {
		return Null, err
	}
	cmpHi, ok := Compare(xv, hiv)
	return NewBool(ok && cmpHi <= 0), nil
}

type cisnull struct {
	x      cexpr
	negate bool
}

func (c *cisnull) eval(ec *execCtx, e env) (Value, error) {
	v, err := c.x.eval(ec, e)
	if err != nil {
		return Null, err
	}
	return NewBool(v.IsNull() != c.negate), nil
}

type cfunc struct {
	name string
	args []cexpr
	re   *matcher // for REGEXP_LIKE with constant pattern
}

func (c *cfunc) eval(ec *execCtx, e env) (Value, error) {
	switch c.name {
	case "REGEXP_LIKE":
		sv, err := c.args[0].eval(ec, e)
		if err != nil {
			return Null, err
		}
		if sv.IsNull() {
			return NewBool(false), nil
		}
		m := c.re
		if m == nil {
			pv, err := c.args[1].eval(ec, e)
			if err != nil {
				return Null, err
			}
			m, err = ec.pattern(pv.String())
			if err != nil {
				return Null, err
			}
		}
		return NewBool(m.match(sv.String())), nil
	case "LENGTH":
		v, err := c.args[0].eval(ec, e)
		if err != nil || v.IsNull() {
			return Null, err
		}
		if v.Kind == KBytes {
			return NewInt(int64(len(v.B))), nil
		}
		return NewInt(int64(len(v.String()))), nil
	case "SUBSTR":
		v, err := c.args[0].eval(ec, e)
		if err != nil || v.IsNull() {
			return Null, err
		}
		pv, err := c.args[1].eval(ec, e)
		if err != nil || pv.IsNull() {
			return Null, err
		}
		if pv.Kind != KInt {
			return Null, fmt.Errorf("engine: SUBSTR position must be an integer")
		}
		s := v.String()
		start := int(pv.I) - 1 // SQL SUBSTR is 1-based
		if start < 0 {
			start = 0
		}
		if start >= len(s) {
			return NewText(""), nil
		}
		return NewText(s[start:]), nil
	case "LOWER", "UPPER":
		v, err := c.args[0].eval(ec, e)
		if err != nil || v.IsNull() {
			return Null, err
		}
		if c.name == "LOWER" {
			return NewText(strings.ToLower(v.String())), nil
		}
		return NewText(strings.ToUpper(v.String())), nil
	case "ABS":
		v, err := c.args[0].eval(ec, e)
		if err != nil || v.IsNull() {
			return Null, err
		}
		if v.Kind == KInt {
			if v.I < 0 {
				return NewInt(-v.I), nil
			}
			return v, nil
		}
		f, ok := v.numeric()
		if !ok {
			return Null, fmt.Errorf("engine: ABS of non-number")
		}
		if f < 0 {
			f = -f
		}
		return NewFloat(f), nil
	}
	return Null, fmt.Errorf("engine: unknown function %q", c.name)
}

type cexists struct {
	plan   *selectPlan
	negate bool
	node   *opNode // subplan boundary operator, set by lowerStmt
}

func (c *cexists) eval(ec *execCtx, e env) (Value, error) {
	st := ec.op(c.node)
	st.open()
	found := false
	emit := func([]Value) (bool, error) {
		found = true
		return false, nil // stop at first row
	}
	var err error
	if ec.timing {
		t0 := time.Now()
		err = ec.runPlanFirst(c.plan, e, emit)
		st.addTime(time.Since(t0))
	} else {
		err = ec.runPlanFirst(c.plan, e, emit)
	}
	if err != nil {
		return Null, err
	}
	if found {
		st.rowOut()
	}
	return NewBool(found != c.negate), nil
}

type csubq struct {
	plan *selectPlan
	node *opNode // subplan boundary operator, set by lowerStmt
}

func (c *csubq) eval(ec *execCtx, e env) (Value, error) {
	st := ec.op(c.node)
	st.open()
	// COUNT(*) subqueries count; other scalar subqueries return the
	// first row's single value (NULL when empty).
	if c.plan.countStar {
		n := int64(0)
		emit := func([]Value) (bool, error) {
			n++
			return true, nil
		}
		var err error
		if ec.timing {
			t0 := time.Now()
			err = ec.runPlan(c.plan, e, emit)
			st.addTime(time.Since(t0))
		} else {
			err = ec.runPlan(c.plan, e, emit)
		}
		if err != nil {
			return Null, err
		}
		st.rowOut()
		return NewInt(n), nil
	}
	out := Null
	got := false
	emit := func(row []Value) (bool, error) {
		out = row[0]
		got = true
		return false, nil
	}
	var err error
	if ec.timing {
		t0 := time.Now()
		err = ec.runPlanFirst(c.plan, e, emit)
		st.addTime(time.Since(t0))
	} else {
		err = ec.runPlanFirst(c.plan, e, emit)
	}
	if err != nil {
		return Null, err
	}
	if got {
		st.rowOut()
	}
	return out, nil
}

// matcher wraps pathre with a stdlib regexp fallback for patterns
// outside the ERE subset pathre supports. For pathre patterns without
// a literal fast path, dfa holds the dense byte-class DFA compiled at
// the same (sole) compilation site — the NFA simulation allocates two
// state sets per call, the DFA walk allocates nothing, which is what
// makes the vectorized REGEXP_LIKE pass worthwhile.
type matcher struct {
	fast *pathre.Regexp
	dfa  *pathre.DFA
	slow *regexp.Regexp
}

func (m *matcher) match(s string) bool {
	if m.dfa != nil {
		return m.dfa.MatchString(s)
	}
	if m.fast != nil {
		return m.fast.MatchString(s)
	}
	return m.slow.MatchString(s)
}

// matchAll evaluates the matcher over a batch of inputs, writing one
// verdict per input into out. The engine's vectorized filter pass
// (batch.go) is its only hot caller; non-DFA matchers degrade to the
// per-row loop.
func (m *matcher) matchAll(inputs []string, out []bool) {
	if m.dfa != nil {
		m.dfa.MatchAll(inputs, out)
		return
	}
	for i, s := range inputs {
		out[i] = m.match(s)
	}
}

// patternCache shares compiled matchers across queries and
// goroutines. Entries are published under the write lock, so a
// matcher's fast/slow fields are safely visible to every reader. The
// cache is bounded: adversarial or generated workloads can present an
// unbounded stream of distinct patterns, so at patternCacheCap
// entries the whole map is dropped and rebuilt from the live working
// set (flush-on-overflow — constant-time, and a full flush costs one
// recompile per still-hot pattern).
const patternCacheCap = 1024

var patternCache = struct {
	mu sync.RWMutex
	m  map[string]*matcher
}{m: make(map[string]*matcher)}

// PatternCacheSize reports the number of cached REGEXP_LIKE
// matchers, for metrics and tests. It never exceeds patternCacheCap.
func PatternCacheSize() int {
	patternCache.mu.RLock()
	defer patternCache.mu.RUnlock()
	return len(patternCache.m)
}

// lookupPattern returns the cached matcher for a pattern, or nil on a
// miss. Split out of compilePattern so the executor can count
// per-operator cache hits without touching the compile path.
func lookupPattern(pat string) *matcher {
	patternCache.mu.RLock()
	m := patternCache.m[pat]
	patternCache.mu.RUnlock()
	return m
}

// compilePattern is the engine's only sanctioned pattern-compilation
// site (enforced by the regexploop analyzer): every per-row matcher
// must come from here so row loops hit the cache instead of
// recompiling.
func compilePattern(pat string) (*matcher, error) {
	var m *matcher
	if m = lookupPattern(pat); m != nil {
		return m, nil
	}
	if err := failpoint.Inject("engine/pattern-compile"); err != nil {
		return nil, err
	}
	if fast, err := pathre.Compile(pat); err == nil {
		m = &matcher{fast: fast}
		if !fast.HasLiteralPath() {
			// Patterns that would otherwise run the NFA simulation get a
			// dense DFA; transcheck proves DFA/NFA agreement (VerifyDFA)
			// for every corpus pattern, and FuzzPathDFA fuzzes it. A
			// pattern exceeding the DFA state bound just keeps the NFA.
			if d, derr := pathre.CompileDFA(fast); derr == nil {
				m.dfa = d
			}
		}
	} else {
		slow, err2 := regexp.Compile(pat)
		if err2 != nil {
			return nil, fmt.Errorf("engine: REGEXP_LIKE pattern %q: %v", pat, err2)
		}
		m = &matcher{slow: slow}
	}
	patternCache.mu.Lock()
	if prev, ok := patternCache.m[pat]; ok {
		m = prev // lost a compile race; keep the published matcher
	} else {
		if len(patternCache.m) >= patternCacheCap {
			patternCache.m = make(map[string]*matcher, patternCacheCap)
		}
		patternCache.m[pat] = m
	}
	patternCache.mu.Unlock()
	return m, nil
}
