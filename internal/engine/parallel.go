package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failpoint"
)

// morselSize is the number of driving-table rows per morsel. Small
// enough that workers load-balance across skewed join fan-outs, large
// enough to amortize scheduling.
const morselSize = 256

// morselOut is one morsel's private output buffer; workers never
// share buffers, so emission is race-free by construction.
type morselOut struct {
	rows  []orderedRow
	count int64
}

// collectParallel runs a top-level plan by partitioning the driving
// step's row ids into fixed-size morsels executed by up to
// ec.parallelism workers. Per-morsel buffers are concatenated in
// morsel order, so the merged stream is exactly the serial emission
// order (DISTINCT and the stable sort then behave identically to the
// serial executor). handled=false means the plan isn't worth (or
// can't be) partitioned and the caller should run serially.
//
// Correlated subplans (EXISTS, scalar subqueries) are not partitioned:
// they run serially inside whichever worker bound their outer row,
// against that worker's private env and execCtx.
func (ec *execCtx) collectParallel(plan *selectPlan) (rows []orderedRow, count int64, handled bool, err error) {
	if len(plan.steps) == 0 {
		return nil, 0, false, nil
	}
	// Constant pre-filters: a false one yields an empty result (or a
	// zero count) without touching any rows.
	ok, err := ec.evalPreFilters(plan, env{})
	if err != nil {
		return nil, 0, false, err
	}
	if !ok {
		return nil, 0, true, nil
	}
	ids, err := drivingIDs(ec, plan)
	if err != nil {
		return nil, 0, false, err
	}
	if len(ids) <= morselSize {
		// A single morsel gains nothing; let the serial executor run.
		return nil, 0, false, nil
	}
	nMorsels := (len(ids) + morselSize - 1) / morselSize
	workers := ec.parallelism
	if workers > nMorsels {
		workers = nMorsels
	}
	// Build shared read-only state up front so workers never race on
	// lazily initialized hash-join build sides; a build that blows
	// the memory budget fails the statement before any fan-out.
	if err := prebuildHashJoins(ec, plan); err != nil {
		return nil, 0, false, err
	}
	// The builds may have consumed the deadline; observe it before
	// spawning workers.
	if err := ec.checkNow(); err != nil {
		return nil, 0, false, err
	}

	outs := make([]morselOut, nMorsels)
	errs := make([]error, workers)
	frames := make([]opFrame, workers)
	var next atomic.Int64
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Private execCtx: the deadline tick counter and the operator
			// stats frame must not be shared (frames are merged below,
			// after the join). Nested subplans see parallelism 0 (serial).
			// The accountant and context are shared: budgets govern the
			// statement, not the worker.
			wec := &execCtx{db: ec.db, ctx: ec.ctx, deadline: ec.deadline,
				acct: ec.acct, sql: ec.sql,
				stats: make(opFrame, len(ec.stats)), timing: ec.timing,
				batch: ec.batch}
			frames[w] = wec.stats
			if werr := wec.workerLoop(plan, ids, nMorsels, outs, &next, &aborted); werr != nil {
				errs[w] = werr
				aborted.Store(true)
			}
		}(w)
	}
	wg.Wait()
	// Fold the per-worker stats shards into the statement's frame; the
	// workers have joined, so each slot is back to a single writer.
	for _, f := range frames {
		ec.stats.mergeFrom(f)
	}
	for _, werr := range errs {
		if werr != nil {
			return nil, 0, false, werr
		}
	}
	if plan.countStar {
		for _, o := range outs {
			count += o.count
		}
		return nil, count, true, nil
	}
	total := 0
	for _, o := range outs {
		total += len(o.rows)
	}
	rows = make([]orderedRow, 0, total)
	for _, o := range outs {
		rows = append(rows, o.rows...)
	}
	return rows, 0, true, nil
}

// workerLoop is one worker's morsel-claiming loop. It is the
// worker-side statement boundary: a panic inside any morsel converts
// to *InternalError here (the goroutine's own deferred recover — the
// caller's cannot see it) and aborts the other workers at their next
// claim.
func (ec *execCtx) workerLoop(plan *selectPlan, ids []int64, nMorsels int,
	outs []morselOut, next *atomic.Int64, aborted *atomic.Bool) (err error) {
	defer guardPanics(ec.sql, &err)
	for {
		m := int(next.Add(1)) - 1
		if m >= nMorsels || aborted.Load() {
			return nil
		}
		if err := failpoint.Inject("engine/morsel-claim"); err != nil {
			return err
		}
		// One unconditional deadline/cancellation check per claim: the
		// in-morsel tick counter only fires every 1024 rows, which a
		// worker draining a few small morsels never reaches.
		if err := ec.checkNow(); err != nil {
			return err
		}
		lo := m * morselSize
		hi := lo + morselSize
		if hi > len(ids) {
			hi = len(ids)
		}
		if err := runMorsel(ec, plan, ids[lo:hi], &outs[m]); err != nil {
			return err
		}
	}
}

// runMorsel drives one morsel's row ids through the join pipeline in
// batches, buffering projected rows (or the count) into the morsel's
// private output. With a budget set, buffered rows charge the shared
// accountant per row so the typed error fires at the exact row
// regardless of batch size; without one the charges are flushed per
// morsel (checks are then no-ops and only the peak matters, which
// only ever grows during collection).
func runMorsel(ec *execCtx, plan *selectPlan, ids []int64, out *morselOut) error {
	exact := ec.acct.limited()
	var pendRows, pendBytes int64
	r := &stepRunner{ec: ec, plan: plan, e: env{}, batch: ec.batch,
		emit: func(row, keys []Value) (bool, error) {
			if plan.countStar {
				out.count++
				return true, nil
			}
			b := rowMemBytes(row, keys)
			if exact {
				if err := ec.acct.addRow(b); err != nil {
					return false, err
				}
			} else {
				pendRows++
				pendBytes += b
			}
			out.rows = append(out.rows, orderedRow{row: row, keys: keys})
			return true, nil
		}}
	if err := r.runRoot(ids); err != nil {
		return err
	}
	return ec.acct.addRows(pendRows, pendBytes)
}

// drivingIDs materializes the driving step's candidate row ids in the
// executor's canonical enumeration order, recording the enumeration
// against the driving scan's operator (the workers then only replay
// the materialized ids, so the scan is counted exactly once). At the
// top level the step's access expressions can only reference
// constants (no outer bindings), so enumeration under an empty env is
// exact.
func drivingIDs(ec *execCtx, plan *selectPlan) ([]int64, error) {
	s := plan.steps[0]
	st := ec.op(plan.phys.scans[0])
	st.open()
	var t0 time.Time
	if ec.timing {
		t0 = time.Now()
	}
	defer func() {
		if ec.timing {
			st.addTime(time.Since(t0))
		}
	}()
	if _, ok := s.access.(fullScan); ok {
		ids := make([]int64, len(s.st.rows))
		for i := range ids {
			ids[i] = int64(i)
		}
		st.rowsOutN(int64(len(ids)))
		return ids, nil
	}
	var ids []int64
	sc := ec.getScratch(ec.batch)
	err := forEachBatch(ec, env{}, s, st, sc, func(batch []int64) (bool, error) {
		st.rowsOutN(int64(len(batch)))
		ids = append(ids, batch...)
		return true, nil
	})
	ec.putScratch(sc)
	if err != nil {
		return nil, err
	}
	return ids, nil
}

// prebuildHashJoins forces construction of every hash-join build side
// the plan's steps will probe, charging builds to the statement's
// accountant and attributing the charged bytes to the probing step's
// scan operator.
func prebuildHashJoins(ec *execCtx, plan *selectPlan) error {
	for i, s := range plan.steps {
		col := -1
		switch a := s.access.(type) {
		case *hashEq:
			col = a.col
		case *fatHash:
			col = a.h.col
		}
		if col < 0 {
			continue
		}
		_, built, bytes, err := s.st.hashFor(col, ec.acct)
		if err != nil {
			return err
		}
		if built {
			ec.op(plan.phys.scans[i]).charge(bytes)
		}
	}
	return nil
}
