package engine

// Batched execution support: operator boundaries move fixed-size
// row-id batches (ExecOptions.BatchSize, default DefaultBatchSize)
// instead of single rows, so dispatch, deadline polls, governor
// charges and stat updates are paid once per batch. Results, operator
// stats and EXPLAIN ANALYZE output are identical at every batch size
// — BatchSize=1 degenerates to the old row-at-a-time execution.

// DefaultBatchSize is the row-id batch capacity used when
// ExecOptions.BatchSize is unset.
const DefaultBatchSize = 1024

// batchScratch is the per-step working memory of one active scan:
// the id batch buffer, the key-encoding buffers its access path
// builds bounds into, and the column/mask scratch of the vectorized
// filter pass. Each nesting level of the join pipeline owns its own
// scratch (pooled on the execCtx) because an outer step's index scan
// is still walking its key bounds while inner steps run.
type batchScratch struct {
	ids   []int64
	key   []byte
	key2  []byte
	paths []string
	keep  []bool
	out   []bool
}

// getScratch returns a scratch whose id buffer has capacity n,
// reusing a pooled one when available. Early-stopping consumers
// (EXISTS, scalar subqueries) run with n=1 and draw from a separate
// free list so their buffers don't shrink the main pipeline's.
func (ec *execCtx) getScratch(n int) *batchScratch {
	pool := &ec.free
	if n == 1 {
		pool = &ec.freeOne
	}
	if k := len(*pool); k > 0 {
		sc := (*pool)[k-1]
		*pool = (*pool)[:k-1]
		return sc
	}
	return &batchScratch{ids: make([]int64, 0, n)}
}

// putScratch returns a scratch to its free list.
func (ec *execCtx) putScratch(sc *batchScratch) {
	if cap(sc.ids) == 1 {
		ec.freeOne = append(ec.freeOne, sc)
		return
	}
	ec.free = append(ec.free, sc)
}

// ensureStrings grows *s to at least n entries and returns the first
// n of them.
func ensureStrings(s *[]string, n int) []string {
	if cap(*s) < n {
		*s = make([]string, n)
	}
	return (*s)[:n]
}

// ensureBools grows *s to at least n entries and returns the first n.
func ensureBools(s *[]bool, n int) []bool {
	if cap(*s) < n {
		*s = make([]bool, n)
	}
	return (*s)[:n]
}

// checkBatch amortizes deadline/cancellation checks over batches: the
// clock is consulted about once per 1024 rows regardless of the batch
// size, matching the cadence of the old per-row tick counter.
func (ec *execCtx) checkBatch(n int) error {
	if ec.deadline.IsZero() && ec.ctx == nil {
		return nil
	}
	ec.ticks += n
	if ec.ticks < 1024 {
		return nil
	}
	ec.ticks = 0
	return ec.checkNow()
}

// vecFilter evaluates the step's vectorized REGEXP_LIKE prefix over a
// whole batch and returns the keep mask parallel to ids. The
// vectorized filters are plan-time-compiled constant patterns over a
// column of the step's own table, so the pass is error-free and
// allocation-free (path columns are text; Value.String is zero-copy),
// and a row's filters still short-circuit in source order: the
// vectorized run is a prefix, residual conjuncts only see surviving
// rows.
func (r *stepRunner) vecFilter(s *joinStep, sc *batchScratch, ids []int64) []bool {
	n := len(ids)
	keep := ensureBools(&sc.keep, n)
	paths := ensureStrings(&sc.paths, n)
	out := ensureBools(&sc.out, n)
	for i := range keep {
		keep[i] = true
	}
	rows := s.st.rows
	for _, vf := range s.vec {
		for i, id := range ids {
			if !keep[i] {
				paths[i] = ""
				continue
			}
			v := rows[id][vf.pos]
			if v.IsNull() {
				// SQL REGEXP_LIKE(NULL, p) is false here (see cfunc.eval).
				keep[i] = false
				paths[i] = ""
				continue
			}
			paths[i] = v.String()
		}
		vf.m.matchAll(paths, out)
		for i := range keep {
			keep[i] = keep[i] && out[i]
		}
	}
	return keep
}
