package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestSQLTaint(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.SQLTaint, "sqltaint/a", "sqltaint/ok")
}

// Real packages that execute SQL must stay clean; cmd/xsql's REPL
// parse carries the one sanctioned //xvet:ignore sqltaint.
func TestSQLTaintClean(t *testing.T) {
	expectClean(t, analysis.SQLTaint,
		"repro/internal/engine", "repro/xrel", "repro/internal/core", "repro/cmd/xsql")
}
