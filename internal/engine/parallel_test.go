package engine

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/sqlast"
)

// bigDB builds a synthetic database whose driving tables span many
// morsels, so the parallel executor actually partitions work (the
// engine_test fixture is a single morsel and exercises the serial
// fallback instead). Generation is deterministic.
func bigDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB()
	item, err := db.CreateTable("item",
		Column{"id", TInt}, Column{"par", TInt}, Column{"dewey_pos", TBytes},
		Column{"path_id", TInt}, Column{"text", TText}, Column{"val", TInt},
		Column{"score", TFloat})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := db.CreateTable("cat", Column{"id", TInt}, Column{"name", TText})
	if err != nil {
		t.Fatal(err)
	}
	const nItems = 4096
	const nCats = 64
	for i := 0; i < nCats; i++ {
		cat.MustInsert(NewInt(int64(i)), NewText(fmt.Sprintf("cat-%d", i%7)))
	}
	rnd := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int64 {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return int64(rnd % uint64(n))
	}
	for i := 0; i < nItems; i++ {
		dew := []byte{1, byte(next(16)), byte(next(16)), byte(next(16))}
		val := NewInt(next(100))
		if next(10) == 0 {
			val = Null
		}
		item.MustInsert(NewInt(int64(i)), NewInt(next(nItems)), NewBytes(dew),
			NewInt(1+next(8)), NewText(fmt.Sprintf("%d", next(1000))), val,
			NewFloat(float64(next(1000))/8))
	}
	for _, ix := range []struct {
		n    string
		cols []string
	}{
		{"item_pk", []string{"id"}},
		{"item_par", []string{"par"}},
		{"item_dp", []string{"dewey_pos", "path_id"}},
	} {
		if _, err := item.CreateIndex(ix.n, ix.cols...); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cat.CreateIndex("cat_pk", "id"); err != nil {
		t.Fatal(err)
	}
	return db
}

// parallelQueries cover every access path, DISTINCT, COUNT(*),
// correlated EXISTS, UNION, dynamic patterns, and both sort paths
// (memcomparable keys, and the generic fallback via the float
// column).
var parallelQueries = []string{
	"SELECT i.id, i.text FROM item i WHERE i.val > 90 ORDER BY i.id",
	"SELECT i.id FROM item i WHERE i.dewey_pos BETWEEN X'0102' AND X'0104' ORDER BY i.id DESC",
	"SELECT DISTINCT i.path_id FROM item i ORDER BY i.path_id DESC",
	"SELECT DISTINCT i.text FROM item i ORDER BY i.text",
	"SELECT COUNT(*) FROM item i WHERE i.val < 10",
	"SELECT i.id FROM item i, cat c WHERE i.val = c.id AND c.name = 'cat-3' ORDER BY i.id",
	"SELECT i.id, j.id FROM item i, item j WHERE j.par = i.id AND i.val > 80 ORDER BY i.id, j.id",
	"SELECT i.id FROM item i WHERE EXISTS (SELECT NULL FROM item j WHERE j.par = i.id AND j.val > 50) ORDER BY i.id",
	"SELECT i.id FROM item i WHERE REGEXP_LIKE(i.text, '^1[0-9]*$') ORDER BY i.id",
	"SELECT i.id FROM item i ORDER BY i.score, i.id",
	"SELECT i.id FROM item i ORDER BY i.val, i.id",
	"SELECT i.id AS v FROM item i WHERE i.val = 3 UNION SELECT i.id AS v FROM item i WHERE i.val = 5 ORDER BY v",
}

// TestParallelMatchesSerial checks that the morsel executor returns
// byte-identical results (rows and order) to the serial executor.
func TestParallelMatchesSerial(t *testing.T) {
	db := bigDB(t)
	for _, q := range parallelQueries {
		st, err := sqlast.Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want, err := db.Run(st)
		if err != nil {
			t.Fatalf("%s: serial: %v", q, err)
		}
		got, err := db.RunWithOptions(st, ExecOptions{Parallelism: 8})
		if err != nil {
			t.Fatalf("%s: parallel: %v", q, err)
		}
		if !equalResults(want, got) {
			t.Errorf("%s: parallel result differs from serial (%d vs %d rows)",
				q, len(got.Rows), len(want.Rows))
		}
	}
}

// TestParallelSmallTableFallsBack checks that sub-morsel inputs take
// the serial path and still produce correct results with parallelism
// requested.
func TestParallelSmallTableFallsBack(t *testing.T) {
	db := fixtureDB(t)
	for _, q := range []string{
		"SELECT F.id FROM F WHERE F.text = '2'",
		"SELECT DISTINCT F.par FROM F",
		"SELECT COUNT(*) FROM G",
	} {
		st, err := sqlast.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.Run(st)
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.RunWithOptions(st, ExecOptions{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !equalResults(want, got) {
			t.Errorf("%s: result differs with Parallelism=4", q)
		}
	}
}

// TestParallelTimeout checks that a budget expiring while workers are
// draining morsels surfaces ErrTimeout, stops every worker, and leaks
// no goroutines.
func TestParallelTimeout(t *testing.T) {
	db := bigDB(t)
	before := runtime.NumGoroutine()
	// A non-equi self-join over 4096x4096 pairs: far more work than a
	// 2ms budget allows, so the deadline fires mid-drain.
	st, err := sqlast.Parse("SELECT COUNT(*) FROM item i, item j WHERE i.val < j.val")
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.RunWithOptions(st, ExecOptions{Parallelism: 8, Timeout: 2 * time.Millisecond})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// collectParallel joins its WaitGroup before returning, so worker
	// goroutines must already be gone (allow the runtime a moment to
	// retire exiting goroutines).
	deadline := time.Now().Add(2 * time.Second)
	after := runtime.NumGoroutine()
	for after > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}
