// Goroutine-leak fixtures for the engine package: every spawn must
// carry a visible cancellation or join mechanism.
package engine

import (
	"context"
	"sync"
)

func plainLeak() {
	go func() { // want "no cancellation or join mechanism"
		for {
			work()
		}
	}()
}

func namedLeak() {
	go worker(7) // want "no cancellation or join mechanism"
}

func worker(int)                {}
func workerCtx(context.Context) {}
func work()                     {}

func okWaitGroupJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func(w int) {
		defer wg.Done()
		work()
	}(0)
	wg.Wait()
}

func okContextParam(ctx context.Context) {
	go func(ctx context.Context) {
		<-ctx.Done()
	}(ctx)
}

func okNamedWithContext(ctx context.Context) {
	go workerCtx(ctx)
}

func okChannelReceive(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

func okCapturedChannel() {
	stop := make(chan struct{})
	go func() {
		<-stop
	}()
	close(stop)
}

func okRangeOverChannel(in chan int) {
	go func() {
		for range in {
			work()
		}
	}()
}
