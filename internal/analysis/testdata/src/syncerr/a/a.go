// Seeded violations for the syncerr analyzer: discarded durability
// errors on os.File handles (fsyncgate).
package a

import "os"

func deferredSync() error {
	f, err := os.Open("in.dat") // read-only, but Sync is always durability
	if err != nil {
		return err
	}
	defer f.Sync() // want `defer f.Sync\(\) discards the fsync error`
	return nil
}

func deferredCloseWritable() error {
	f, err := os.Create("out.dat")
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f.Close\(\) on a writable file discards the close error`
	_, err = f.WriteString("payload")
	return err
}

func bareSync() error {
	f, err := os.Create("out.dat")
	if err != nil {
		return err
	}
	f.Sync() // want `f.Sync\(\) error discarded`
	return f.Close()
}

func blankedSync() error {
	f, err := os.Create("out.dat")
	if err != nil {
		return err
	}
	_ = f.Sync() // want `_ = f.Sync\(\) blanks a durability error`
	return f.Close()
}

func blankedCloseWritable() error {
	f, err := os.OpenFile("out.dat", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString("payload"); err != nil {
		return err
	}
	_ = f.Close() // want `_ = f.Close\(\) blanks the close error of a writable file`
	return nil
}

func bareCloseWritable() error {
	f, err := os.OpenFile("out.dat", os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	f.Close() // want `f.Close\(\) error on a writable file discarded`
	doMore()
	return nil
}

func deferredCloseAppend() error {
	f, err := os.OpenFile("log.txt", os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f.Close\(\) on a writable file`
	_, err = f.WriteString("line\n")
	return err
}

func deferredCloseTemp() error {
	f, err := os.CreateTemp("", "scratch")
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f.Close\(\) on a writable file`
	_, err = f.WriteString("scratch")
	return err
}

func deferredSyncInClosure() func() error {
	f, _ := os.Create("out.dat")
	return func() error {
		defer f.Sync() // want `defer f.Sync\(\) discards the fsync error`
		_, err := f.WriteString("x")
		return err
	}
}

func doMore() {}
