package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/accel"
	"repro/internal/native"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/staircase"
	"repro/internal/xmltree"
)

// recursiveFixture builds a random document over a deliberately nasty
// recursive schema: two mutually nesting elements plus leaves, so
// every relation is I-P and fragment-boundary alignment actually
// matters.
func recursiveFixture(t testing.TB, seed int64) (*schema.Schema, *xmltree.Document) {
	t.Helper()
	s, err := schema.NewBuilder("r").
		Element("r", "a", "b").
		Element("a", "a", "b", "leaf").
		Element("b", "a", "leaf").
		Attrs("a", "k").
		Text("leaf").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	bld := xmltree.NewBuilder()
	var gen func(name string, depth int)
	gen = func(name string, depth int) {
		attrs := []string{}
		if name == "a" && r.Intn(3) == 0 {
			attrs = []string{"k", fmt.Sprint(r.Intn(3))}
		}
		bld.Start(name, attrs...)
		if depth < 6 {
			for i, n := 0, r.Intn(3); i < n; i++ {
				switch {
				case name == "b":
					if r.Intn(2) == 0 {
						gen("a", depth+1)
					} else {
						bld.Elem("leaf", fmt.Sprint(r.Intn(4)))
					}
				default:
					switch r.Intn(3) {
					case 0:
						gen("a", depth+1)
					case 1:
						gen("b", depth+1)
					default:
						bld.Elem("leaf", fmt.Sprint(r.Intn(4)))
					}
				}
			}
		}
		bld.End()
	}
	bld.Start("r")
	for i := 0; i < 25; i++ {
		if r.Intn(2) == 0 {
			gen("a", 1)
		} else {
			gen("b", 1)
		}
	}
	bld.End()
	doc, err := bld.Doc()
	if err != nil {
		t.Fatal(err)
	}
	return s, doc
}

// recursiveQueries are chain-heavy queries whose exactness depends on
// the fragment-boundary constraints.
var recursiveQueries = []string{
	"//a/parent::a",
	"//a/parent::a/parent::a",
	"//a/parent::b/parent::a",
	"//leaf/parent::a/parent::b",
	"//a/parent::a/ancestor::b",
	"//b/ancestor::a/parent::a",
	"//b/ancestor::a/ancestor::a",
	"//a/ancestor::b/ancestor::a",
	"//leaf/ancestor::a/ancestor::a",
	"//a[@k]/a/a",
	"//a[@k=1]//b/a",
	"//a[leaf=2]/a",
	"//b/a[leaf]/parent::b/parent::a",
	"//a/a//leaf",
	"//a//a/leaf",
	"//a/b/a/b",
	"//r/a//b//a",
	"//a[not(leaf)]/parent::a",
	"//b[a/leaf=3]/ancestor::a",
	"//a/a/parent::a/a",
	"//a/following-sibling::a/a",
	"//b/preceding-sibling::a/parent::a",
	"//a/following::b/a",
	"//leaf/preceding::leaf",
	"//a[count(leaf)=2]/parent::a",
	"//a/a[2]",
	"//a/descendant-or-self::a",
	"//a/descendant-or-self::a/leaf",
	"//b/descendant-or-self::a/ancestor::b",
}

func TestRecursiveChainsSchemaAware(t *testing.T) {
	s, doc := recursiveFixture(t, 17)
	st, err := shred.NewSchemaAware(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(doc); err != nil {
		t.Fatal(err)
	}
	tr := New(s, nil)
	ev := native.New(doc)
	for _, q := range recursiveQueries {
		check(t, tr, st, ev, q)
	}
}

func TestRecursiveChainsEdge(t *testing.T) {
	s, doc := recursiveFixture(t, 17)
	_ = s
	st, err := shred.NewEdge()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(doc); err != nil {
		t.Fatal(err)
	}
	tr := NewEdge(nil)
	ev := native.New(doc)
	for _, q := range recursiveQueries {
		checkEdge(t, tr, st, ev, q)
	}
}

// TestRecursiveFuzz generates random chain queries over many random
// recursive documents and cross-checks both translators.
func TestRecursiveFuzz(t *testing.T) {
	iters := 8
	if testing.Short() {
		iters = 2
	}
	names := []string{"a", "b", "leaf", "*"}
	axes := []string{"", "", "", "parent::", "ancestor::", "descendant-or-self::"}
	for seed := int64(0); seed < int64(iters); seed++ {
		s, doc := recursiveFixture(t, 100+seed)
		aware, err := shred.NewSchemaAware(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := aware.Load(doc); err != nil {
			t.Fatal(err)
		}
		edge, err := shred.NewEdge()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := edge.Load(doc); err != nil {
			t.Fatal(err)
		}
		accelStore, err := shred.NewAccel()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := accelStore.Load(doc); err != nil {
			t.Fatal(err)
		}
		stair := staircase.FromTree(doc)
		trA := New(s, nil)
		trE := NewEdge(nil)
		trX := accel.New()
		ev := native.New(doc)
		r := rand.New(rand.NewSource(seed * 31))
		for i := 0; i < 60; i++ {
			var b strings.Builder
			b.WriteString("//" + []string{"a", "b", "leaf"}[r.Intn(3)])
			for j, n := 0, 1+r.Intn(3); j < n; j++ {
				ax := axes[r.Intn(len(axes))]
				name := names[r.Intn(len(names))]
				if name == "leaf" && (ax == "parent::" || ax == "ancestor::") {
					name = "a" // leaves have no element children
				}
				if ax == "" && r.Intn(3) == 0 {
					b.WriteString("/")
				}
				b.WriteString("/" + ax + name)
			}
			q := b.String()
			// Oracle.
			ids, err := ev.ElementIDs(q)
			if err != nil {
				t.Fatalf("oracle %q: %v", q, err)
			}
			want := append([]int64{}, ids...)
			// Schema-aware.
			gotA := runQuery(t, trA, aware, q)
			if !reflect.DeepEqual(append([]int64{}, gotA...), want) && (len(gotA) != 0 || len(want) != 0) {
				trans, _ := trA.Translate(q)
				t.Fatalf("schema-aware disagrees on %q:\n got %v\nwant %v\nSQL: %s", q, gotA, want, trans.SQL)
			}
			// Edge.
			trans, err := trE.Translate(q)
			if err != nil {
				t.Fatalf("edge translate %q: %v", q, err)
			}
			res, err := edge.DB.Run(trans.Stmt)
			if err != nil {
				t.Fatalf("edge run %q: %v", q, err)
			}
			gotE := make([]int64, 0, len(res.Rows))
			for _, row := range res.Rows {
				gotE = append(gotE, row[0].I)
			}
			if !reflect.DeepEqual(gotE, want) && (len(gotE) != 0 || len(want) != 0) {
				t.Fatalf("edge disagrees on %q:\n got %v\nwant %v\nSQL: %s", q, gotE, want, trans.SQL)
			}
			// XPath Accelerator.
			transX, err := trX.Translate(q)
			if err != nil {
				t.Fatalf("accel translate %q: %v", q, err)
			}
			resX, err := accelStore.DB.Run(transX.Stmt)
			if err != nil {
				t.Fatalf("accel run %q: %v", q, err)
			}
			gotX := make([]int64, 0, len(resX.Rows))
			for _, row := range resX.Rows {
				gotX = append(gotX, row[0].I)
			}
			if !reflect.DeepEqual(gotX, want) && (len(gotX) != 0 || len(want) != 0) {
				t.Fatalf("accel disagrees on %q:\n got %v\nwant %v\nSQL: %s", q, gotX, want, transX.SQL)
			}
			// Staircase.
			gotS, err := stair.EvalString(q)
			if err != nil {
				t.Fatalf("staircase %q: %v", q, err)
			}
			if !reflect.DeepEqual(gotS, want) && (len(gotS) != 0 || len(want) != 0) {
				t.Fatalf("staircase disagrees on %q:\n got %v\nwant %v", q, gotS, want)
			}
		}
	}
}
