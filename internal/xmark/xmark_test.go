package xmark

import (
	"testing"

	"repro/internal/native"
	"repro/internal/schema"
)

func TestSchemaMarks(t *testing.T) {
	s := Schema()
	// parlist/listitem recursion makes those I-P.
	for _, name := range []string{"parlist", "listitem"} {
		if s.Node(name).Mark != schema.InfinitePaths {
			t.Errorf("%s should be I-P, got %s", name, s.Node(name).Mark)
		}
	}
	// item has six possible root paths (one per region): F-P.
	if got := s.Node("item"); got.Mark != schema.FinitePaths || len(got.RootPaths) != 6 {
		t.Errorf("item marking = %s with %d paths", got.Mark, len(got.RootPaths))
	}
	// person has exactly one path: U-P.
	if got := s.Node("person"); got.Mark != schema.UniquePath {
		t.Errorf("person marking = %s", got.Mark)
	}
	// description appears under item, category and annotation: F-P with
	// several paths.
	if got := s.Node("description"); got.Mark != schema.InfinitePaths && got.Mark != schema.FinitePaths {
		t.Errorf("description marking = %s", got.Mark)
	}
}

func TestGenerateValidatesAndIsDeterministic(t *testing.T) {
	cfg := Config{Scale: 0.05, Seed: 7}
	doc1 := MustGenerate(cfg)
	doc2 := MustGenerate(cfg)
	if doc1.Len() != doc2.Len() {
		t.Fatalf("non-deterministic: %d vs %d nodes", doc1.Len(), doc2.Len())
	}
	if err := Schema().Validate(doc1); err != nil {
		t.Fatalf("generated document violates schema: %v", err)
	}
}

// queryByID finds a benchmark query by its id.
func queryByID(t *testing.T, id string) string {
	t.Helper()
	for _, q := range Queries {
		if q.ID == id {
			return q.XPath
		}
	}
	t.Fatalf("no query %s", id)
	return ""
}

func TestCalibratedCardinalities(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	doc := MustGenerate(Config{Scale: 1, Seed: 42})
	if err := Schema().Validate(doc); err != nil {
		t.Fatal(err)
	}
	ev := native.New(doc)
	count := func(q string) int {
		ids, err := ev.ElementIDs(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return len(ids)
	}
	// Exact calibrations.
	if got := count("/site/regions/*/item"); got != 2175 {
		t.Errorf("Q1 items = %d, want 2175", got)
	}
	if got := count("//*[@id]"); got != 6025 {
		t.Errorf("Q13 = %d, want 6025 (paper Appendix C)", got)
	}
	if got := count("/site/regions/namerica/item | /site/regions/samerica/item"); got != 1100 {
		t.Errorf("Q22 = %d, want 1100", got)
	}
	if got := count(queryByID(t, "Q11")); got != 1 {
		t.Errorf("Q11 = %d, want 1", got)
	}
	if got := count(queryByID(t, "Q9")); got != 3 {
		t.Errorf("Q9 = %d, want 3", got)
	}
	if got := count(queryByID(t, "Q21")); got != 1 {
		t.Errorf("Q21 = %d, want 1", got)
	}
	if got := count("/site/regions/*/item[@id='item0']/following::item"); got != 2174 {
		t.Errorf("Q10 = %d, want 2174", got)
	}
	// Approximate calibrations (within a factor of ~2 of the paper).
	approx := []struct {
		q        string
		lo, hi   int
		paperRef int
	}{
		{"//keyword", 3000, 14000, 7014},
		{queryByID(t, "Q2"), 150, 900, 361},
		{queryByID(t, "Q4"), 1500, 8000, 3514},
		{queryByID(t, "Q6"), 1200, 6000, 2778},
		{queryByID(t, "Q7"), 400, 1800, 883},
		{queryByID(t, "Q12"), 100, 500, 227},
		{queryByID(t, "Q23"), 500, 1500, 952},
		{queryByID(t, "Q24"), 900, 1900, 1304},
		{queryByID(t, "QA"), 4, 16, 8},
	}
	for _, a := range approx {
		if got := count(a.q); got < a.lo || got > a.hi {
			t.Errorf("%s = %d, want in [%d, %d] (paper: %d)", a.q, got, a.lo, a.hi, a.paperRef)
		}
	}
}

func TestQueriesParse(t *testing.T) {
	doc := MustGenerate(Config{Scale: 0.02, Seed: 1})
	ev := native.New(doc)
	for _, q := range Queries {
		if _, err := ev.ElementIDs(q.XPath); err != nil {
			t.Errorf("%s (%s): %v", q.ID, q.XPath, err)
		}
	}
}
