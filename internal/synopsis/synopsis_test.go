package synopsis

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestEmpty(t *testing.T) {
	s := Empty()
	if s.Rows() != 0 || s.NumCols() != 0 {
		t.Fatalf("empty synopsis not empty: %v", s)
	}
	c := s.Col(3)
	if c.Count() != 0 || c.Distinct() != 0 || c.Nulls() != 0 {
		t.Fatalf("out-of-range column not zero: %v", c)
	}
	if n, _ := c.EqInt(7); n != 0 {
		t.Fatalf("EqInt on empty = %d, want 0", n)
	}
}

func TestExactHistogram(t *testing.T) {
	b := Extend(nil)
	for i := 0; i < 100; i++ {
		b.Int(0, int64(i%10)) // 10 distinct, 10 each
		b.Text(1, fmt.Sprintf("v%d", i))
		if i%4 == 0 {
			b.Null(2)
		} else {
			b.Int(2, 42)
		}
		b.Row()
	}
	s := b.Seal()
	if s.Rows() != 100 {
		t.Fatalf("rows = %d, want 100", s.Rows())
	}
	c0 := s.Col(0)
	if !c0.Exact() || c0.Distinct() != 10 {
		t.Fatalf("col0 distinct = %d exact=%v, want 10 exact", c0.Distinct(), c0.Exact())
	}
	if n, exact := c0.EqInt(3); n != 10 || !exact {
		t.Fatalf("EqInt(3) = %d,%v want 10,true", n, exact)
	}
	if n, exact := c0.EqInt(99); n != 0 || !exact {
		t.Fatalf("EqInt(99) = %d,%v want 0,true", n, exact)
	}
	if min, max, ok := c0.IntRange(); !ok || min != 0 || max != 9 {
		t.Fatalf("IntRange = %d..%d,%v", min, max, ok)
	}
	if n, exact := c0.IntRangeCount(2, 4); n != 30 || !exact {
		t.Fatalf("IntRangeCount(2,4) = %d,%v want 30,true", n, exact)
	}
	if f := c0.MaxFreq(); f != 10 {
		t.Fatalf("MaxFreq = %d, want 10", f)
	}
	c1 := s.Col(1)
	if c1.Distinct() != 100 {
		t.Fatalf("col1 distinct = %d, want 100", c1.Distinct())
	}
	if c1.AvgLen() < 2 || c1.AvgLen() > 3 || c1.MaxLen() != 3 {
		t.Fatalf("col1 len stats avg=%v max=%d", c1.AvgLen(), c1.MaxLen())
	}
	c2 := s.Col(2)
	if c2.Nulls() != 25 || c2.Count() != 100 {
		t.Fatalf("col2 nulls=%d count=%d, want 25,100", c2.Nulls(), c2.Count())
	}
}

func TestIntBoolAndFloatKeysDistinct(t *testing.T) {
	b := Extend(nil)
	b.Int(0, 1)
	b.Float(0, 1.0)
	b.Row()
	b.Row()
	s := b.Seal()
	if d := s.Col(0).Distinct(); d != 2 {
		t.Fatalf("int 1 and float 1.0 should be distinct keys, got %d", d)
	}
}

func TestOverflowDistinctEstimate(t *testing.T) {
	b := Extend(nil)
	const n = 5000
	for i := 0; i < n; i++ {
		b.Int(0, int64(i))
		b.Row()
	}
	s := b.Seal()
	c := s.Col(0)
	if c.Exact() {
		t.Fatal("expected overflow past HistCap")
	}
	d := c.Distinct()
	if d < n*7/10 || d > n*13/10 {
		t.Fatalf("distinct estimate %d too far from %d", d, n)
	}
	// Equality on a histogram-resident value is still served exactly
	// from the histogram bucket (exact=false because overflow means we
	// can't rule out later duplicates).
	if got, _ := c.EqInt(5); got != 1 {
		t.Fatalf("EqInt(5) = %d, want 1", got)
	}
	// A value past the cap gets the uniform overflow estimate.
	if got, exact := c.EqInt(4999); exact || got < 1 {
		t.Fatalf("EqInt(4999) = %d exact=%v", got, exact)
	}
	if _, exact := c.IntRangeCount(0, 10); exact {
		t.Fatal("range count should be inexact after overflow")
	}
}

func TestExtendCopyOnWrite(t *testing.T) {
	b := Extend(nil)
	for i := 0; i < 50; i++ {
		b.Int(0, int64(i%5))
		b.Row()
	}
	base := b.Seal()
	b2 := Extend(base)
	for i := 0; i < 50; i++ {
		b2.Int(0, 99)
		b2.Row()
	}
	next := b2.Seal()
	if base.Rows() != 50 || next.Rows() != 100 {
		t.Fatalf("rows base=%d next=%d", base.Rows(), next.Rows())
	}
	if n, _ := base.Col(0).EqInt(99); n != 0 {
		t.Fatalf("predecessor mutated: EqInt(99)=%d", n)
	}
	if n, _ := next.Col(0).EqInt(99); n != 50 {
		t.Fatalf("successor EqInt(99)=%d, want 50", n)
	}
	if base.Col(0).Distinct() != 5 || next.Col(0).Distinct() != 6 {
		t.Fatalf("distinct base=%d next=%d", base.Col(0).Distinct(), next.Col(0).Distinct())
	}
}

func TestExtendAcrossOverflowPreservesSketch(t *testing.T) {
	b := Extend(nil)
	for i := 0; i < 3000; i++ {
		b.Int(0, int64(i))
		b.Row()
	}
	mid := b.Seal()
	b2 := Extend(mid)
	for i := 3000; i < 6000; i++ {
		b2.Int(0, int64(i))
		b2.Row()
	}
	s := b2.Seal()
	d := s.Col(0).Distinct()
	if d < 6000*7/10 || d > 6000*13/10 {
		t.Fatalf("distinct after extended overflow = %d, want ≈6000", d)
	}
	// mid unchanged
	dm := mid.Col(0).Distinct()
	if dm < 3000*7/10 || dm > 3000*13/10 {
		t.Fatalf("mid distinct = %d, want ≈3000", dm)
	}
}

func TestEqual(t *testing.T) {
	build := func(n int) *Table {
		b := Extend(nil)
		r := rand.New(rand.NewSource(7))
		for i := 0; i < n; i++ {
			b.Int(0, r.Int63n(50))
			b.Text(1, fmt.Sprintf("s%d", r.Intn(20)))
			b.Row()
		}
		return b.Seal()
	}
	a, bb := build(500), build(500)
	if !Equal(a, bb) {
		t.Fatal("identical builds not Equal")
	}
	c := build(501)
	if Equal(a, c) {
		t.Fatal("different builds Equal")
	}
	if !Equal(Empty(), Empty()) {
		t.Fatal("empty tables not Equal")
	}
}

func TestBuilderSealTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("second Seal did not panic")
		}
	}()
	b := Extend(nil)
	b.Seal()
	b.Seal()
}

func TestMaxFreqSkew(t *testing.T) {
	b := Extend(nil)
	for i := 0; i < 900; i++ {
		b.Int(0, 1)
		b.Row()
	}
	for i := 0; i < 100; i++ {
		b.Int(0, int64(i+2))
		b.Row()
	}
	s := b.Seal()
	if f := s.Col(0).MaxFreq(); f != 900 {
		t.Fatalf("MaxFreq = %d, want 900", f)
	}
}
