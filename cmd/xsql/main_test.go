package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
)

func td(name string) string { return filepath.Join("..", "..", "testdata", name) }

func TestRunStatements(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	err = run("", td("figure1.schema"), false, td("figure1.xml"), engine.ExecOptions{}, []string{
		`\d`,
		"SELECT COUNT(*) FROM F",
		"SELECT F.id FROM F WHERE F.text = '2';",
		"CREATE TABLE extra (a INT)",
		"INSERT INTO extra VALUES (7)",
		"SELECT e.a FROM extra e",
		"THIS IS NOT SQL", // printed as an error, not fatal
		"",
	}, nil, out)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out.Name())
	s := string(data)
	for _, want := range []string{"COUNT(*)", "(1 row(s))", "error:", "1 row(s) inserted"} {
		if !contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestRunExplain drives the \explain command and the EXPLAIN ANALYZE
// statement form: both print an annotated operator tree; a malformed
// \explain argument reports an error without killing the shell.
func TestRunExplain(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	err = run("", td("figure1.schema"), false, td("figure1.xml"), engine.ExecOptions{}, []string{
		`\explain SELECT F.id FROM F ORDER BY F.id DESC`,
		"EXPLAIN SELECT F.id FROM F",
		"EXPLAIN ANALYZE SELECT F.id FROM F",
		`\explain NOT SQL AT ALL`,
	}, nil, out)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out.Name())
	s := string(data)
	for _, want := range []string{
		"sort: F.id DESC [loops=",        // \explain runs EXPLAIN ANALYZE
		"scan F: full scan est_rows=2\n", // bare EXPLAIN: estimate, no stats
		"scan F: full scan [loops=",      // ANALYZE: stats block precedes est
		"q=1.00",                         // ANALYZE appends per-operator q-error
		"total: rows=",
		"error:",
	} {
		if !contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunInteractiveLoop(t *testing.T) {
	in, err := os.CreateTemp(t.TempDir(), "in")
	if err != nil {
		t.Fatal(err)
	}
	in.WriteString("SELECT COUNT(*) FROM G\n\\q\n")
	in.Seek(0, 0)
	out, _ := os.CreateTemp(t.TempDir(), "out")
	defer out.Close()
	if err := run("", "", false, td("figure1.xml"), engine.ExecOptions{}, nil, in, out); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out.Name())
	if !contains(string(data), "xsql>") {
		t.Errorf("no prompt in output: %s", data)
	}
}

func TestRunErrors(t *testing.T) {
	out, _ := os.CreateTemp(t.TempDir(), "out")
	defer out.Close()
	if err := run("", "nosuch.schema", false, td("figure1.xml"), engine.ExecOptions{}, nil, nil, out); err == nil {
		t.Error("missing schema should fail")
	}
	if err := run("", "", false, "nosuch.xml", engine.ExecOptions{}, nil, nil, out); err == nil {
		t.Error("missing document should fail")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// TestRunBudgets drives the shell with per-statement budgets: the
// over-budget statement reports an error inline, later statements
// still run, and \stats shows the recorded peak.
func TestRunBudgets(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	err = run("", td("figure1.schema"), false, td("figure1.xml"),
		engine.ExecOptions{MaxRows: 1}, []string{
			"SELECT id FROM F ORDER BY id", // >1 row: budget error
			"SELECT COUNT(*) FROM F",       // counting is not materializing
			`\stats`,
		}, nil, out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.Contains(got, "row budget") {
		t.Errorf("output missing row-budget error:\n%s", got)
	}
	if !strings.Contains(got, "(1 row(s))") {
		t.Errorf("COUNT after budget error did not run:\n%s", got)
	}
	if !strings.Contains(got, "peak statement memory:") {
		t.Errorf("\\stats missing peak memory:\n%s", got)
	}
}

// TestRunPersistent drives -db: one run creates a store and commits
// rows, a second run on the same directory sees them after recovery.
func TestRunPersistent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	out1, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out1.Close()
	err = run(dir, td("figure1.schema"), false, td("figure1.xml"), engine.ExecOptions{}, []string{
		"CREATE TABLE extra (a INT)",
		"INSERT INTO extra VALUES (7)",
		"CREATE INDEX extra_a ON extra (a)",
	}, nil, out1)
	if err != nil {
		t.Fatal(err)
	}

	out2, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out2.Close()
	err = run(dir, "", false, "", engine.ExecOptions{}, []string{
		"SELECT COUNT(*) FROM F",
		"SELECT e.a FROM extra e WHERE e.a = 7",
	}, nil, out2)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out2.Name())
	s := string(data)
	if !contains(s, "opened "+dir) {
		t.Errorf("second run did not report reopening:\n%s", s)
	}
	if !contains(s, "7") || !contains(s, "(1 row(s))") {
		t.Errorf("recovered store missing committed rows:\n%s", s)
	}
}
