package engine

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/sqlast"
)

// The chaos suite injects faults (budget overruns, failpoint errors,
// failpoint panics) into every access path of the executor, at every
// entry point, and asserts clean unwinding: the fault surfaces as a
// typed error, serial and parallel execution agree on the outcome
// class, no goroutines leak, no caches are poisoned, and the DB
// stays usable for the next statement. Run under -race via `make
// chaos`.

var errChaosHash = errors.New("chaos: injected hash-build failure")

// outcomeClass buckets an execution result for serial/parallel
// agreement checks.
func outcomeClass(t *testing.T, err error) string {
	t.Helper()
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrMemoryBudget):
		return "mem-budget"
	case errors.Is(err, ErrRowBudget):
		return "row-budget"
	case errors.Is(err, ErrInternal):
		return "internal"
	case errors.Is(err, errChaosHash):
		return "hash-error"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	default:
		return "unexpected:" + err.Error()
	}
}

// waitNoGoroutineGrowth gives the runtime a moment to retire exiting
// goroutines, then asserts the count returned to the baseline.
func waitNoGoroutineGrowth(t *testing.T, before int, label string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	after := runtime.NumGoroutine()
	for after > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before {
		t.Errorf("%s: goroutines leaked: %d before, %d after", label, before, after)
	}
}

// TestChaosMatrix runs every access-path query under every fault
// kind, serial and Parallelism=8, asserting that both modes agree on
// the typed outcome and that the database answers the unfaulted
// query correctly afterwards.
func TestChaosMatrix(t *testing.T) {
	db := bigDB(t)
	stmts := make([]sqlast.Statement, len(parallelQueries))
	baseline := make([]*Result, len(parallelQueries))
	for i, q := range parallelQueries {
		st, err := sqlast.Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		stmts[i] = st
		// Baseline run: caches the plan and builds hash sides, so the
		// faulted runs below exercise the executor, not the planner.
		res, err := db.Run(st)
		if err != nil {
			t.Fatalf("%s: baseline: %v", q, err)
		}
		baseline[i] = res
	}
	faults := []struct {
		name string
		opts ExecOptions
		arm  func() error
	}{
		{name: "mem-budget", opts: ExecOptions{MaxMemoryBytes: 1}},
		{name: "row-budget", opts: ExecOptions{MaxRows: 1}},
		{name: "hash-build-error", arm: func() error {
			return failpoint.Enable("engine/hash-build", failpoint.Return(errChaosHash))
		}},
		{name: "hash-build-panic", arm: func() error {
			return failpoint.Enable("engine/hash-build", failpoint.Panic("chaos"))
		}},
	}
	defer failpoint.Reset()
	for _, f := range faults {
		for i, q := range parallelQueries {
			before := runtime.NumGoroutine()
			if f.arm != nil {
				if err := f.arm(); err != nil {
					t.Fatal(err)
				}
			}
			_, serialErr := db.RunWithOptions(stmts[i], f.opts)
			popts := f.opts
			popts.Parallelism = 8
			_, parErr := db.RunWithOptions(stmts[i], popts)
			failpoint.Reset()

			sc, pc := outcomeClass(t, serialErr), outcomeClass(t, parErr)
			if strings.HasPrefix(sc, "unexpected") || strings.HasPrefix(pc, "unexpected") {
				t.Errorf("%s / %s: untyped error (serial %v, parallel %v)", f.name, q, serialErr, parErr)
			}
			if sc != pc {
				t.Errorf("%s / %s: serial outcome %q, parallel outcome %q", f.name, q, sc, pc)
			}
			waitNoGoroutineGrowth(t, before, f.name+" / "+q)

			// The statement after the fault must see an intact engine.
			res, err := db.RunWithOptions(stmts[i], ExecOptions{Parallelism: 4})
			if err != nil {
				t.Fatalf("%s / %s: DB unusable after fault: %v", f.name, q, err)
			}
			if !equalResults(res, baseline[i]) {
				t.Errorf("%s / %s: post-fault result differs from baseline", f.name, q)
			}
		}
	}
}

// TestChaosMorselClaimPanic injects a panic at the morsel-claim site:
// the worker's own panic boundary must convert it into *InternalError
// carrying the SQL text, with no goroutine leaks and no crash.
func TestChaosMorselClaimPanic(t *testing.T) {
	db := bigDB(t)
	defer failpoint.Reset()
	const q = "SELECT i.id, i.text FROM item i WHERE i.val > 90 ORDER BY i.id"
	st, err := sqlast.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	if err := failpoint.Enable("engine/morsel-claim", failpoint.Panic("worker down")); err != nil {
		t.Fatal(err)
	}
	_, err = db.RunWithOptions(st, ExecOptions{Parallelism: 8})
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err %v is not *InternalError", err)
	}
	if !strings.Contains(ie.SQL, "SELECT") || !strings.Contains(ie.SQL, "item") {
		t.Errorf("InternalError.SQL = %q, want the offending statement", ie.SQL)
	}
	if len(ie.Stack) == 0 {
		t.Error("InternalError.Stack is empty")
	}
	failpoint.Reset()
	waitNoGoroutineGrowth(t, before, "morsel-claim panic")
	// Serial execution never claims morsels; it must be unaffected
	// even while the failpoint is armed.
	if err := failpoint.Enable("engine/morsel-claim", failpoint.Panic("worker down")); err != nil {
		t.Fatal(err)
	}
	res, err := db.Run(st)
	if err != nil {
		t.Fatalf("serial run with morsel-claim armed: %v", err)
	}
	failpoint.Reset()
	if !equalResults(res, want) {
		t.Error("serial result changed under morsel-claim failpoint")
	}
	// And the engine serves the same query cleanly afterwards.
	res, err = db.RunWithOptions(st, ExecOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !equalResults(res, want) {
		t.Error("post-panic parallel result differs")
	}
}

// TestChaosMorselClaimError checks the error-return path at the same
// site: one worker fails its claim, all workers drain, the statement
// reports the injected error.
func TestChaosMorselClaimError(t *testing.T) {
	db := bigDB(t)
	defer failpoint.Reset()
	st, err := sqlast.Parse("SELECT i.id FROM item i ORDER BY i.id")
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	boom := errors.New("claim refused")
	// Fire on the third claim so some morsels complete first.
	if err := failpoint.Enable("engine/morsel-claim", failpoint.Return(boom).After(2)); err != nil {
		t.Fatal(err)
	}
	_, err = db.RunWithOptions(st, ExecOptions{Parallelism: 8})
	failpoint.Reset()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected %v", err, boom)
	}
	waitNoGoroutineGrowth(t, before, "morsel-claim error")
}

// TestChaosPatternCompile injects a failure into the sanctioned
// pattern-compilation site and checks the error surfaces without
// poisoning the shared pattern cache.
func TestChaosPatternCompile(t *testing.T) {
	db := bigDB(t)
	defer failpoint.Reset()
	// A pattern no other test compiles, so the cache misses and the
	// failpoint actually fires.
	const q = "SELECT i.id FROM item i WHERE REGEXP_LIKE(i.text, '^7[0-4]?$') ORDER BY i.id"
	if err := failpoint.Enable("engine/pattern-compile", failpoint.Return(nil)); err != nil {
		t.Fatal(err)
	}
	_, err := db.RunSQL(q)
	failpoint.Reset()
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// The failed compile must not have cached anything for the
	// pattern; with the fault cleared the query runs.
	res, err := db.RunSQL(q)
	if err != nil {
		t.Fatalf("post-fault run: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Error("post-fault pattern query returned no rows")
	}
}

// TestChaosPlanCacheInsert fails the plan-cache insert: the
// statement errors, nothing is cached, and the next run re-plans
// and caches normally.
func TestChaosPlanCacheInsert(t *testing.T) {
	db := bigDB(t)
	defer failpoint.Reset()
	const q = "SELECT i.id FROM item i WHERE i.val = 77 ORDER BY i.id"
	sizeBefore := db.PlanCacheSize()
	if err := failpoint.Enable("engine/plancache-insert", failpoint.Return(nil)); err != nil {
		t.Fatal(err)
	}
	_, err := db.RunSQL(q)
	failpoint.Reset()
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if got := db.PlanCacheSize(); got != sizeBefore {
		t.Errorf("plan cache grew across failed insert: %d -> %d", sizeBefore, got)
	}
	if _, err := db.RunSQL(q); err != nil {
		t.Fatalf("post-fault run: %v", err)
	}
	if got := db.PlanCacheSize(); got != sizeBefore+1 {
		t.Errorf("plan cache size = %d after clean run, want %d", got, sizeBefore+1)
	}
}

// TestChaosSleepWidensTimeout uses a Sleep failpoint at the morsel
// claim to guarantee the wall-clock budget expires mid-drain.
func TestChaosSleepWidensTimeout(t *testing.T) {
	db := bigDB(t)
	defer failpoint.Reset()
	st, err := sqlast.Parse("SELECT i.id FROM item i ORDER BY i.id")
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	if err := failpoint.Enable("engine/morsel-claim", failpoint.Sleep(10*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err = db.RunWithOptions(st, ExecOptions{Parallelism: 8, Timeout: time.Millisecond})
	failpoint.Reset()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	waitNoGoroutineGrowth(t, before, "sleep timeout")
}

// TestChaosDeadlineObservedAfterHashBuild pins the satellite fix: a
// deadline that expires during a serial hash-join build must be
// observed between the build and probe phases, not 1024 probe rows
// later. The build is forced (the cached side is dropped) and
// stalled past the deadline with a Sleep failpoint.
func TestChaosDeadlineObservedAfterHashBuild(t *testing.T) {
	db := bigDB(t)
	defer failpoint.Reset()
	const q = "SELECT i.id FROM item i, cat c WHERE i.val = c.id AND c.name = 'cat-3' ORDER BY i.id"
	st, err := sqlast.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	// Plan (and plan-time hash builds) happen here.
	if _, err := db.Run(st); err != nil {
		t.Fatal(err)
	}
	// Drop the cached build sides so execution must rebuild, and
	// stall that rebuild past the deadline.
	for _, name := range db.TableNames() {
		st := db.Table(name).state()
		st.hashMu.Lock()
		st.hashIdx = map[int]map[string][]int64{}
		st.hashMax = map[int]int{}
		st.hashMu.Unlock()
	}
	if err := failpoint.Enable("engine/hash-build", failpoint.Sleep(15*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err = db.RunWithOptions(st, ExecOptions{Timeout: time.Millisecond})
	failpoint.Reset()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout observed at the build/probe boundary", err)
	}
	// The engine must still answer the query once the stall clears.
	if _, err := db.Run(st); err != nil {
		t.Fatalf("post-fault run: %v", err)
	}
}

// TestBudgetErrorsKeepDBUsable exhausts both budgets back to back
// and verifies the very next unlimited statement sees full, correct
// results — no partially-visible state, no stuck accounting.
func TestBudgetErrorsKeepDBUsable(t *testing.T) {
	db := bigDB(t)
	const q = "SELECT i.id, i.text FROM item i ORDER BY i.id"
	st, err := sqlast.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallelism := range []int{0, 8} {
		if _, err := db.RunWithOptions(st, ExecOptions{Parallelism: parallelism, MaxMemoryBytes: 64}); !errors.Is(err, ErrMemoryBudget) {
			t.Fatalf("parallelism %d: err = %v, want ErrMemoryBudget", parallelism, err)
		}
		if _, err := db.RunWithOptions(st, ExecOptions{Parallelism: parallelism, MaxRows: 3}); !errors.Is(err, ErrRowBudget) {
			t.Fatalf("parallelism %d: err = %v, want ErrRowBudget", parallelism, err)
		}
		res, err := db.RunWithOptions(st, ExecOptions{Parallelism: parallelism})
		if err != nil {
			t.Fatalf("parallelism %d: unlimited rerun: %v", parallelism, err)
		}
		if !equalResults(res, want) {
			t.Errorf("parallelism %d: post-budget result differs", parallelism)
		}
	}
}
