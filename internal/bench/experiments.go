package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlast"
)

// Table is a rendered result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Opts are experiment run options.
type Opts struct {
	Reps   int
	Budget time.Duration
	Verify bool
	// Sink, when non-nil, receives one machine-readable Record per
	// measurement in addition to the rendered table cells.
	Sink func(Record)
}

// Record is one machine-readable measurement, accumulated into the
// repo's BENCH_<experiment>.json perf trajectory by cmd/xbench -json.
type Record struct {
	Experiment   string  `json:"experiment"`
	Workload     string  `json:"workload"`
	QueryID      string  `json:"query"`
	System       string  `json:"system"`
	NsPerOp      int64   `json:"ns_per_op"`
	Nodes        int     `json:"nodes"`
	Parallel     int     `json:"parallel"` // engine worker count; 0/1 = serial
	Reps         int     `json:"reps"`
	Timeout      bool    `json:"timeout"`
	Skipped      bool    `json:"skipped"`
	Error        string  `json:"error,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Joins        int     `json:"joins"`
	Operators    int     `json:"operators"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BatchSize    int     `json:"batch_size"` // effective engine batch capacity; 0 = non-SQL system
	// Plan-quality fields (experiment "planquality" only): the plan's
	// join order and access paths, the settled plan's worst
	// per-operator q-error, adaptive re-plans taken, and total rows
	// pushed through the plan's operators.
	JoinOrder string  `json:"join_order,omitempty"`
	MaxQError float64 `json:"max_q_error,omitempty"`
	Replans   uint64  `json:"replans,omitempty"`
	WorkRows  int64   `json:"work_rows,omitempty"`
}

// emit forwards a measurement to the Opts sink, if any.
func (o Opts) emit(experiment string, w *Workload, m Measurement) {
	if o.Sink == nil {
		return
	}
	o.Sink(Record{
		Experiment:   experiment,
		Workload:     w.Name,
		QueryID:      m.QueryID,
		System:       string(m.System),
		NsPerOp:      m.Avg.Nanoseconds(),
		Nodes:        m.Nodes,
		Parallel:     w.Parallelism,
		Reps:         m.Reps,
		Timeout:      m.Timeout,
		Skipped:      m.Skipped,
		Error:        m.ErrorMsg,
		CacheHitRate: m.CacheHitRate,
		Joins:        m.Joins,
		Operators:    m.Operators,
		AllocsPerOp:  m.AllocsPerOp,
		BatchSize:    m.BatchSize,
	})
}

// DefaultOpts mirror the paper's five repetitions with a generous
// per-query budget standing in for "did not complete".
func DefaultOpts() Opts {
	return Opts{Reps: 5, Budget: 60 * time.Second, Verify: true}
}

// Fig3 reproduces Figure 3: schema-aware vs schema-oblivious
// PPF-based processing, one row per query of the given workloads.
func Fig3(workloads []*Workload, o Opts) (*Table, error) {
	t := &Table{
		Title:   "Figure 3: schema-aware vs schema-oblivious (Edge-like) PPF processing [seconds]",
		Headers: []string{"query", "# nodes", "PPF", "Edge-like PPF", "slowdown"},
	}
	for _, w := range workloads {
		for _, q := range w.Queries {
			if o.Verify {
				if _, err := w.Verify(q); err != nil {
					return nil, err
				}
			}
			a := w.Measure(PPF, q, o.Reps, o.Budget)
			b := w.Measure(EdgePPF, q, o.Reps, o.Budget)
			o.emit("fig3", w, a)
			o.emit("fig3", w, b)
			slow := "-"
			if a.Avg > 0 && b.Avg > 0 && !a.Timeout && !b.Timeout {
				slow = fmt.Sprintf("%.1fx", float64(b.Avg)/float64(a.Avg))
			}
			t.Rows = append(t.Rows, []string{q.ID, fmt.Sprint(a.Nodes), a.Cell(), b.Cell(), slow})
		}
	}
	return t, nil
}

// AppendixC reproduces one half of the Appendix C table (Figure 4's
// data): every system on every query of a workload.
func AppendixC(w *Workload, o Opts) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Appendix C (%s): execution times [seconds]", w.Name),
		Headers: []string{"query", "# nodes"},
	}
	for _, sys := range Systems {
		t.Headers = append(t.Headers, string(sys))
	}
	for _, q := range w.Queries {
		if o.Verify {
			if _, err := w.Verify(q); err != nil {
				return nil, err
			}
		}
		row := []string{q.ID, ""}
		for _, sys := range Systems {
			m := w.Measure(sys, q, o.Reps, o.Budget)
			o.emit("appc", w, m)
			if m.Nodes > 0 || row[1] == "" {
				if !m.Skipped && m.ErrorMsg == "" {
					row[1] = fmt.Sprint(m.Nodes)
				}
			}
			row = append(row, m.Cell())
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblatePathFilter reproduces the Section 4.5 ablation: PPF with and
// without redundant-path-filter omission.
func AblatePathFilter(w *Workload, o Opts) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Ablation (%s): Section 4.5 path-filter omission [seconds]", w.Name),
		Headers: []string{"query", "joins on", "joins off", "omission on", "omission off", "speedup"},
	}
	off := core.DefaultOptions()
	off.PathFilterOmission = false
	trOff := w.NewPPFTranslator(&off)
	for _, q := range w.Queries {
		onTr, err := w.ppf.Translate(q.XPath)
		if err != nil {
			return nil, err
		}
		offTr, err := trOff.Translate(q.XPath)
		if err != nil {
			return nil, err
		}
		a := w.measureStmt(w.Aware.DB, onTr.Stmt, o)
		b := w.measureStmt(w.Aware.DB, offTr.Stmt, o)
		speed := "-"
		if a > 0 && b > 0 {
			speed = fmt.Sprintf("%.2fx", float64(b)/float64(a))
		}
		t.Rows = append(t.Rows, []string{
			q.ID, fmt.Sprint(onTr.Joins), fmt.Sprint(offTr.Joins),
			fmt.Sprintf("%.3f", a.Seconds()), fmt.Sprintf("%.3f", b.Seconds()), speed,
		})
	}
	return t, nil
}

// AblateFKJoin reproduces the Section 4.2 choice: FK equijoins vs
// Dewey comparisons for single-step child/parent PPFs.
func AblateFKJoin(w *Workload, o Opts) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Ablation (%s): FK vs Dewey joins for child/parent steps [seconds]", w.Name),
		Headers: []string{"query", "FK joins", "Dewey joins", "speedup"},
	}
	off := core.DefaultOptions()
	off.FKChildParent = false
	trOff := w.NewPPFTranslator(&off)
	for _, q := range w.Queries {
		onTr, err := w.ppf.Translate(q.XPath)
		if err != nil {
			return nil, err
		}
		offTr, err := trOff.Translate(q.XPath)
		if err != nil {
			return nil, err
		}
		a := w.measureStmt(w.Aware.DB, onTr.Stmt, o)
		b := w.measureStmt(w.Aware.DB, offTr.Stmt, o)
		speed := "-"
		if a > 0 && b > 0 {
			speed = fmt.Sprintf("%.2fx", float64(b)/float64(a))
		}
		t.Rows = append(t.Rows, []string{
			q.ID, fmt.Sprintf("%.3f", a.Seconds()), fmt.Sprintf("%.3f", b.Seconds()), speed,
		})
	}
	return t, nil
}

// ExplainCheck runs EXPLAIN ANALYZE for every query of the Figure 3
// comparison (schema-aware PPF vs Edge-like PPF) and asserts the
// structural claim behind the figure: no UNION branch of the
// schema-aware translation joins more relations than the widest
// branch of the schema-oblivious one (branches are the unit of the
// paper's SQL-splitting argument — a wildcard query like //*[@id] may
// split into more branches, but each must stay narrower). It also
// verifies that every operator in both annotated plans carries runtime
// statistics. An assertion failure is returned as an error.
func ExplainCheck(workloads []*Workload, o Opts) (*Table, error) {
	t := &Table{
		Title:   "EXPLAIN ANALYZE check: per-operator stats and join counts (PPF vs Edge-like PPF)",
		Headers: []string{"query", "PPF joins", "PPF ops", "Edge joins", "Edge ops", "check"},
	}
	for _, w := range workloads {
		for _, q := range w.Queries {
			row, err := w.explainCheckRow(q)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

func (w *Workload) explainCheckRow(q Query) ([]string, error) {
	counts := make(map[System][2]int, 2)
	for _, sys := range []System{PPF, EdgePPF} {
		stmt, err := w.Translate(sys, q)
		if err != nil {
			return nil, fmt.Errorf("%s %s: translate: %w", sys, q.ID, err)
		}
		db := w.dbFor(sys)
		plan, err := db.ExplainAnalyzeWithOptions(stmt, engine.ExecOptions{
			Parallelism:    w.Parallelism,
			MaxMemoryBytes: w.MaxMemoryBytes,
			MaxRows:        w.MaxRows,
			BatchSize:      w.BatchSize,
		})
		if err != nil {
			return nil, fmt.Errorf("%s %s: explain analyze: %w", sys, q.ID, err)
		}
		if err := checkOperatorStats(plan); err != nil {
			return nil, fmt.Errorf("%s %s: %w", sys, q.ID, err)
		}
		ops, err := db.OperatorCount(stmt)
		if err != nil {
			return nil, fmt.Errorf("%s %s: operator count: %w", sys, q.ID, err)
		}
		counts[sys] = [2]int{engine.MaxBranchJoins(stmt), ops}
	}
	ppf, edge := counts[PPF], counts[EdgePPF]
	if ppf[0] > edge[0] {
		return nil, fmt.Errorf("%s: PPF branch joins %d > Edge-like PPF branch joins %d",
			q.ID, ppf[0], edge[0])
	}
	return []string{
		q.ID, fmt.Sprint(ppf[0]), fmt.Sprint(ppf[1]),
		fmt.Sprint(edge[0]), fmt.Sprint(edge[1]), "ok",
	}, nil
}

// checkOperatorStats asserts every operator line of an EXPLAIN ANALYZE
// rendering carries a stats block (the "total:" footer is exempt).
func checkOperatorStats(plan string) error {
	for _, line := range strings.Split(strings.TrimRight(plan, "\n"), "\n") {
		if strings.HasPrefix(line, "total:") || strings.HasSuffix(strings.TrimSpace(line), ":") {
			continue
		}
		if !strings.Contains(line, "[loops=") || !strings.Contains(line, "time=") {
			return fmt.Errorf("operator line missing stats: %q", line)
		}
	}
	return nil
}

// JoinCounts reports the paper's join-count argument: FROM entries
// per query under each SQL-based translation.
func JoinCounts(w *Workload) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Join counts (%s): relations referenced per query", w.Name),
		Headers: []string{"query", "PPF", "PPF selects", "Edge-like PPF", "Accelerator"},
	}
	for _, q := range w.Queries {
		p, err := w.ppf.Translate(q.XPath)
		if err != nil {
			return nil, err
		}
		e, err := w.edgeTr.Translate(q.XPath)
		if err != nil {
			return nil, err
		}
		a, err := w.accelTr.Translate(q.XPath)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			q.ID, fmt.Sprint(p.Joins), fmt.Sprint(p.Selects), fmt.Sprint(e.Joins), fmt.Sprint(a.Joins),
		})
	}
	return t, nil
}

func (w *Workload) measureStmt(db *engine.DB, st sqlast.Statement, o Opts) time.Duration {
	var total time.Duration
	reps := o.Reps
	if reps <= 0 {
		reps = 1
	}
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := db.Run(st); err != nil {
			return 0
		}
		total += time.Since(start)
	}
	return total / time.Duration(reps)
}
