package engine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/sqlast"
)

// EXPLAIN ANALYZE: run the statement with per-operator timing enabled
// and render the physical operator tree annotated with each
// operator's merged OpStats (see opstats.go for counter semantics;
// operator times are inclusive of nested operators, like the
// indentation of the rendered tree).

// ExplainAnalyze executes the statement with default options and
// returns the annotated plan.
func (db *DB) ExplainAnalyze(st sqlast.Statement) (string, error) {
	return db.ExplainAnalyzeWithOptions(st, ExecOptions{})
}

// ExplainAnalyzeWithOptions executes the statement with the given
// options (so parallel plans report their merged per-worker stats)
// and returns the annotated plan.
func (db *DB) ExplainAnalyzeWithOptions(st sqlast.Statement, opts ExecOptions) (string, error) {
	return db.explainAnalyzeContext(nil, st, opts)
}

func (db *DB) explainAnalyzeContext(ctx context.Context, st sqlast.Statement, opts ExecOptions) (out string, err error) {
	key := sqlast.Render(st)
	defer guardPanics(key, &err)
	cs, err := db.compiledFor(st, key)
	if err != nil {
		return "", err
	}
	res, frame, err := db.runCompiledFrame(ctx, cs, opts, key, true)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(renderCompiled(cs, frame))
	fmt.Fprintf(&b, "total: rows=%d peak-mem=%dB\n", len(res.Rows), res.PeakMemBytes)
	return b.String(), nil
}

// runExplainStmt executes an EXPLAIN / EXPLAIN ANALYZE statement,
// returning the rendered plan as a one-column result (one row per
// plan line) so the statement flows through every Run/Exec surface.
func (db *DB) runExplainStmt(ctx context.Context, ex *sqlast.Explain, opts ExecOptions) (*Result, error) {
	var text string
	var err error
	if ex.Analyze {
		text, err = db.explainAnalyzeContext(ctx, ex.Stmt, opts)
	} else {
		text, err = db.Explain(ex.Stmt)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{Cols: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		res.Rows = append(res.Rows, []Value{NewText(line)})
	}
	return res, nil
}

// OperatorCount returns the number of physical operator nodes the
// statement lowers to (scans, filters, projections, dedup, sorts,
// union machinery, and correlated-subplan boundaries) — the
// per-operator companion to JoinSteps for experiment reports.
func (db *DB) OperatorCount(st sqlast.Statement) (n int, err error) {
	key := sqlast.Render(st)
	defer guardPanics(key, &err)
	cs, err := db.compiledFor(st, key)
	if err != nil {
		return 0, err
	}
	return cs.nOps, nil
}
