package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Def is one definition site of a local variable: an assignment, a
// declaration, a range binding, or (Node == nil) the function entry
// for parameters and named results.
type Def struct {
	Var *types.Var
	// Node is the defining statement, or nil for the entry definition.
	Node ast.Node
	// RHS is the defining expression when the definition has one
	// (x := e, x = e); nil for entry defs, range bindings, and
	// multi-value assignments from calls, where RHSCall is set instead.
	RHS ast.Expr
	// RHSCall is the call expression when the variable is bound from a
	// multi-value call result (x, y := f()).
	RHSCall *ast.CallExpr
	// Index is the tuple position for multi-value bindings (0 otherwise).
	Index int
}

// Reach holds the reaching-definitions solution for one graph.
type Reach struct {
	g    *Graph
	info *types.Info
	defs []Def
	// byVar indexes defs by variable for kill sets.
	byVar map[*types.Var][]int
	in    []bitset
	out   []bitset
	// closureWrites are variables assigned inside function literals of
	// the body: their reaching sets are unreliable (the write happens
	// at call time, not at the literal's position), so clients must
	// treat them pessimistically.
	closureWrites map[*types.Var]bool
}

// Reaching computes reaching definitions for the graph. params seeds
// entry definitions (typically the function's parameters, receiver,
// and named results). body is the same block New was built from, used
// to find writes hidden inside function literals.
func Reaching(g *Graph, info *types.Info, params []*types.Var, body *ast.BlockStmt) *Reach {
	r := &Reach{g: g, info: info, byVar: map[*types.Var][]int{}, closureWrites: map[*types.Var]bool{}}
	for _, p := range params {
		r.addDef(Def{Var: p})
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			r.collectDefs(n)
		}
	}
	r.findClosureWrites(body)
	n := len(g.Blocks)
	r.in = make([]bitset, n)
	r.out = make([]bitset, n)
	words := (len(r.defs) + 63) / 64
	for i := 0; i < n; i++ {
		r.in[i] = newBitset(words)
		r.out[i] = newBitset(words)
	}
	// Entry defs reach the entry block's in-set.
	for i, d := range r.defs {
		if d.Node == nil {
			r.in[g.Entry.Index].set(i)
		}
	}
	// Worklist iteration to fixpoint.
	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	inWork := make([]bool, n)
	for i := range inWork {
		inWork[i] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false
		if b != g.Entry {
			r.in[b.Index].clear()
			for _, p := range b.Preds {
				r.in[b.Index].or(r.out[p.Index])
			}
		}
		newOut := r.in[b.Index].clone()
		for _, node := range b.Nodes {
			r.apply(node, newOut)
		}
		if !newOut.equal(r.out[b.Index]) {
			r.out[b.Index] = newOut
			for _, s := range b.Succs {
				if !inWork[s.Index] {
					inWork[s.Index] = true
					work = append(work, s)
				}
			}
		}
	}
	return r
}

// At returns the definitions of v that reach the program point just
// before stmt (a node present in the graph). A nil slice means the
// statement is unreachable or v is unknown here.
func (r *Reach) At(stmt ast.Node, v *types.Var) []Def {
	b := r.g.BlockOf(stmt)
	if b == nil {
		return nil
	}
	live := r.in[b.Index].clone()
	for _, node := range b.Nodes {
		if node == stmt {
			break
		}
		r.apply(node, live)
	}
	var out []Def
	for _, i := range r.byVar[v] {
		if live.has(i) {
			out = append(out, r.defs[i])
		}
	}
	return out
}

// ClosureWritten reports whether v is assigned inside a function
// literal of the body, making its flow-sensitive value unreliable.
func (r *Reach) ClosureWritten(v *types.Var) bool { return r.closureWrites[v] }

// Dump renders the per-block in/out definition sets as stable text
// for golden tests.
func (r *Reach) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "reaching %s\n", r.g.Name)
	name := func(i int) string {
		d := r.defs[i]
		if d.Node == nil {
			return d.Var.Name() + "@entry"
		}
		return fmt.Sprintf("%s@L%d", d.Var.Name(), fset.Position(d.Node.Pos()).Line)
	}
	set := func(bs bitset) string {
		var parts []string
		for i := range r.defs {
			if bs.has(i) {
				parts = append(parts, name(i))
			}
		}
		sort.Strings(parts)
		return strings.Join(parts, " ")
	}
	for _, b := range r.g.Blocks {
		fmt.Fprintf(&sb, "b%d in:{%s} out:{%s}\n", b.Index, set(r.in[b.Index]), set(r.out[b.Index]))
	}
	return sb.String()
}

func (r *Reach) addDef(d Def) {
	if d.Var == nil {
		return
	}
	r.byVar[d.Var] = append(r.byVar[d.Var], len(r.defs))
	r.defs = append(r.defs, d)
}

// collectDefs records the definition sites contributed by one node.
func (r *Reach) collectDefs(n ast.Node) {
	switch x := n.(type) {
	case *ast.AssignStmt:
		call, isCall := singleCallRHS(x)
		for i, lhs := range x.Lhs {
			v := r.lhsVar(lhs)
			if v == nil {
				continue
			}
			d := Def{Var: v, Node: n, Index: i}
			if isCall && len(x.Lhs) > 1 {
				d.RHSCall = call
			} else if len(x.Rhs) == len(x.Lhs) {
				d.RHS = x.Rhs[i]
				d.Index = 0
			} else if isCall {
				d.RHSCall = call
			}
			r.addDef(d)
		}
	case *ast.IncDecStmt:
		if v := r.lhsVar(x.X); v != nil {
			r.addDef(Def{Var: v, Node: n})
		}
	case *ast.DeclStmt:
		gd, ok := x.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, id := range vs.Names {
				v, _ := r.info.Defs[id].(*types.Var)
				if v == nil {
					continue
				}
				d := Def{Var: v, Node: n}
				if i < len(vs.Values) {
					d.RHS = vs.Values[i]
				}
				r.addDef(d)
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{x.Key, x.Value} {
			if v := r.lhsVar(e); v != nil {
				r.addDef(Def{Var: v, Node: n})
			}
		}
	}
}

// apply updates the live set across one node: each variable defined by
// the node kills its other defs and gens its own.
func (r *Reach) apply(n ast.Node, live bitset) {
	for i, d := range r.defs {
		if d.Node == n {
			for _, j := range r.byVar[d.Var] {
				live.unset(j)
			}
			live.set(i)
		}
	}
}

func (r *Reach) lhsVar(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := r.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := r.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// findClosureWrites walks function literals in the body recording
// assignments to variables declared outside them.
func (r *Reach) findClosureWrites(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if v := r.lhsVar(lhs); v != nil && !within(fl, v.Pos()) {
						r.closureWrites[v] = true
					}
				}
			case *ast.IncDecStmt:
				if v := r.lhsVar(x.X); v != nil && !within(fl, v.Pos()) {
					r.closureWrites[v] = true
				}
			}
			return true
		})
		return false // inner literals were covered by the inspect above
	})
}

func within(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

func singleCallRHS(x *ast.AssignStmt) (*ast.CallExpr, bool) {
	if len(x.Rhs) != 1 {
		return nil, false
	}
	call, ok := x.Rhs[0].(*ast.CallExpr)
	return call, ok
}

// bitset is a fixed-width bit vector.
type bitset []uint64

func newBitset(words int) bitset { return make(bitset, words) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) unset(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}
func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}
func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}
func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}
