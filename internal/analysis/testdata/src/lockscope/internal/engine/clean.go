// Sanctioned locking shapes lockscope must not flag: tight critical
// sections around the shared map, callbacks after release, deferred
// unlock over pure map access, and static calls under the lock.
package engine

import "repro/internal/failpoint"

// Copy under the lock, yield after release.
func yieldAfterUnlock(c *cache, key string, yield func(int) bool) {
	c.mu.Lock()
	v := c.m[key]
	c.mu.Unlock()
	yield(v)
}

// Deferred unlock is fine when the body is pure map access.
func deferredPureAccess(c *cache, key string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

func bump(v int) int { return v + 1 }

// Static calls under the lock have known, bounded bodies.
func staticUnderLock(c *cache, key string) {
	c.mu.Lock()
	c.m[key] = bump(c.m[key])
	c.mu.Unlock()
}

// Failpoint before acquiring is the injection pattern the engine uses.
func failpointThenLock(c *cache) error {
	if err := failpoint.Inject("engine/hash-build"); err != nil {
		return err
	}
	c.mu.Lock()
	c.m["k"]++
	c.mu.Unlock()
	return nil
}

// A closure body is its own scope: locks taken inside it are not held
// at the enclosing function's operations.
func closureScopes(c *cache, run func(func())) {
	run(func() {
		c.mu.Lock()
		c.m["k"]++
		c.mu.Unlock()
	})
}
