// Command xvet is the repository's multichecker: it runs the standard
// `go vet` passes and then the custom invariant analyzers from
// internal/analysis (rawsql, deweycmp, regexploop, errdrop,
// recoverguard, opstats) that enforce the paper-derived disciplines
// the type system cannot see.
//
// Usage:
//
//	xvet [-novet] [-only name,name] [-list] [packages]
//
// Packages default to ./... resolved against the enclosing module.
// Exit status is nonzero if go vet fails or any analyzer reports a
// diagnostic. -novet skips the go vet subprocess (CI runs it as its
// own step); -only restricts the custom analyzers.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis"
)

func main() {
	novet := flag.Bool("novet", false, "skip running the standard `go vet` passes first")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list the custom analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if !*novet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	analyzers, err := selectAnalyzers(*only)
	if err == nil {
		var n int
		n, err = runAnalyzers(analyzers, patterns)
		if n > 0 {
			failed = true
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xvet:", err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analysis.All(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a := analysis.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func runAnalyzers(analyzers []*analysis.Analyzer, patterns []string) (int, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.Packages(patterns...)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			return count, err
		}
		for _, d := range diags {
			fmt.Printf("%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer.Name, d.Message)
			count++
		}
	}
	return count, nil
}
