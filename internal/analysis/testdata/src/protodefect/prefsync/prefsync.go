// Package prefsync seeds a publish-before-fsync defect: the commit
// becomes visible to readers before its WAL record is durable.
package prefsync

import (
	"sync/atomic"

	"protodefect/prefsync/internal/wal"
)

type snap struct{ seq uint64 }

type DB struct {
	//walorder:publish
	snap atomic.Pointer[snap]
	log  *wal.Log
}

func (db *DB) publish() {
	db.snap.Store(&snap{seq: db.snap.Load().seq + 1})
}

// Commit publishes first; a crash before the Commit call loses an
// acknowledged write.
func (db *DB) Commit(p []byte) error {
	db.publish()
	_, err := db.log.Commit(p)
	return err
}
