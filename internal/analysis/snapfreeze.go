package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
)

// SnapFreeze enforces the frozen-after-publish half of the COW
// contract: memory reachable from a published snapshot — any value
// derived from a Load of the //walorder:publish atomic.Pointer field,
// directly or through a function summarized as returning published
// memory (loadSnap) — must never be written. Writes are legal only in
// builder scope: through values the function provably allocated
// itself (clone results, newTableState, composite literals), and only
// until the Store that publishes them — a write after the Store is
// flagged even on fresh memory, because readers may already hold the
// pointer. The check is interprocedural: per-function summaries record
// which parameters (receiver included) each function writes through,
// so passing a published value into a writer is rejected at the call
// site with the call-path witness down to the write. Fields annotated
// //guardedby: are excluded — mutex-serialized lazy state (hash index
// builds) is guardedby's domain, not a COW violation.
var SnapFreeze = &Analyzer{
	Name: "snapfreeze",
	Doc: "no write may reach memory derived from a published snapshot " +
		"(Load of the //walorder:publish field); builder-scope writes through " +
		"provably fresh values are legal until the publishing Store",
	Run: runSnapFreeze,
}

func runSnapFreeze(pass *Pass) error {
	ann := pass.annotations()
	if len(ann.publishes) == 0 {
		return nil
	}
	g := pass.callGraph()
	extern := pass.externFresh()
	fresh := g.FreshReturns(extern)

	sf := &snapFreezer{
		pass:     pass,
		g:        g,
		ann:      ann,
		retPub:   map[*callgraph.Node]bool{},
		retParam: map[*callgraph.Node]map[int]bool{},
		writes:   map[*callgraph.Node]map[int]string{},
		params:   map[*callgraph.Node]map[types.Object]int{},
	}
	for _, n := range g.Nodes {
		sf.params[n] = paramIndexes(g, n)
		sf.retParam[n] = map[int]bool{}
	}

	// Fixpoint 1: return summaries. retPub marks functions returning
	// published-derived memory outright (loadSnap and wrappers);
	// retParam marks results derived from a parameter (stateOf returns
	// receiver memory), which become published exactly when the call
	// site passes a published argument. publishedLocals depends on
	// both, so re-derive until stable.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if n.Body == nil {
				continue
			}
			node := n
			locals := sf.publishedLocals(n)
			ownWalkNode(n.Body, func(m ast.Node) {
				r, ok := m.(*ast.ReturnStmt)
				if !ok || len(r.Results) == 0 {
					return
				}
				res := r.Results[0]
				if !sf.retPub[node] && sf.publishedExpr(res, locals) {
					sf.retPub[node] = true
					changed = true
				}
				if !refLike(sf.g.Info.TypeOf(res)) {
					return
				}
				if base := chainBase(res); base != nil {
					if obj := identObj(sf.g.Info, base); obj != nil {
						if i, isParam := sf.params[node][obj]; isParam && !sf.retParam[node][i] {
							sf.retParam[node][i] = true
							changed = true
						}
					}
				}
			})
		}
	}

	// Fixpoint 2: writesParam summaries with witness chains — which
	// parameter's pointed-to memory does each function write, directly
	// or by forwarding the parameter into another writer.
	for _, n := range g.Nodes {
		sf.writes[n] = map[int]string{}
	}
	for _, n := range g.Nodes {
		if n.Body == nil {
			continue
		}
		node := n
		ownWalkNode(n.Body, func(m ast.Node) {
			lhs, ok := writeLHS(m)
			if !ok {
				return
			}
			for _, l := range lhs {
				base, deep := sf.writeBase(l)
				if base == nil || !deep || pass.annotatedField(l, ann) != nil {
					continue
				}
				obj := identObj(pass.TypesInfo, base)
				if obj == nil {
					continue
				}
				if i, isParam := sf.params[node][obj]; isParam {
					if _, seen := sf.writes[node][i]; !seen {
						pos := pass.Fset.Position(l.Pos())
						sf.writes[node][i] = node.Name + " (write to " +
							exprText(pass.Fset, l) + " at line " + itoa(pos.Line) + ")"
					}
				}
			}
		})
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if n.Body == nil {
				continue
			}
			node := n
			ownWalkNode(n.Body, func(m ast.Node) {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return
				}
				callee, argAt := sf.calleeOf(call)
				if callee == nil {
					return
				}
				for j, why := range sf.writes[callee] {
					arg := argAt(j)
					if arg == nil {
						continue
					}
					base := chainBase(arg)
					if base == nil {
						continue
					}
					obj := identObj(pass.TypesInfo, base)
					if obj == nil {
						continue
					}
					if i, isParam := sf.params[node][obj]; isParam {
						if _, seen := sf.writes[node][i]; !seen {
							sf.writes[node][i] = node.Name + " -> " + why
							changed = true
						}
					}
				}
			})
		}
	}

	// Findings.
	for _, n := range g.Nodes {
		if n.Body == nil {
			continue
		}
		sf.checkNode(n, fresh, extern)
	}
	return nil
}

type snapFreezer struct {
	pass     *Pass
	g        *callgraph.Graph
	ann      *protoAnnotations
	retPub   map[*callgraph.Node]bool
	retParam map[*callgraph.Node]map[int]bool
	writes   map[*callgraph.Node]map[int]string
	params   map[*callgraph.Node]map[types.Object]int
}

func (sf *snapFreezer) checkNode(n *callgraph.Node, fresh map[*callgraph.Node]bool, extern func(*types.Func) bool) {
	pass := sf.pass
	locals := sf.publishedLocals(n)
	freshLocals := sf.g.FreshLocals(n, fresh, extern)
	isFresh := func(base *ast.Ident) bool {
		obj := identObj(pass.TypesInfo, base)
		return obj != nil && freshLocals[obj]
	}
	isPub := func(base *ast.Ident) bool {
		obj := identObj(pass.TypesInfo, base)
		return obj != nil && locals[obj]
	}

	ownWalkNode(n.Body, func(m ast.Node) {
		if lhs, ok := writeLHS(m); ok {
			for _, l := range lhs {
				base, deep := sf.writeBase(l)
				if !deep || pass.annotatedField(l, sf.ann) != nil {
					continue
				}
				if base == nil {
					// Write straight through a published-returning call
					// chain: db.snap.Load().tables[k] = v.
					if sf.chainHitsPublishedCall(l, locals) {
						pass.Reportf(l.Pos(),
							"write to %s reaches published snapshot memory; snapshots are "+
								"frozen after publish — clone before mutating", exprText(pass.Fset, l))
					}
					continue
				}
				if isPub(base) && !isFresh(base) {
					pass.Reportf(l.Pos(),
						"write to %s, which is derived from a published snapshot "+
							"(frozen after publish; clone before mutating)", exprText(pass.Fset, l))
				}
			}
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		callee, argAt := sf.calleeOf(call)
		if callee == nil {
			return
		}
		for j, why := range sf.writes[callee] {
			arg := argAt(j)
			if arg == nil {
				continue
			}
			if !sf.publishedExpr(arg, locals) {
				continue
			}
			if base := chainBase(arg); base != nil && isFresh(base) {
				continue
			}
			pass.Reportf(call.Pos(),
				"published snapshot value %s passed to a function that writes it: %s",
				exprText(pass.Fset, arg), why)
		}
	})

	sf.checkAfterPublish(n)
}

// checkAfterPublish flags writes to the stored value on any CFG path
// after the publishing Store: the builder-scope exemption ends at the
// Store, because concurrent readers may already hold the pointer.
func (sf *snapFreezer) checkAfterPublish(n *callgraph.Node) {
	pass := sf.pass

	type storeSite struct {
		call *ast.CallExpr
		obj  types.Object
	}
	var stores []storeSite
	ownWalkNode(n.Body, func(m ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		_, stored, field, isStore, okA := atomicStoreLoad(pass.TypesInfo, call)
		if !okA || !isStore || field == nil || !sf.ann.publishes[field] {
			return
		}
		e := ast.Unparen(stored)
		if u, isU := e.(*ast.UnaryExpr); isU && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		if id, isID := e.(*ast.Ident); isID {
			if obj := identObj(pass.TypesInfo, id); obj != nil {
				stores = append(stores, storeSite{call: call, obj: obj})
			}
		}
	})
	if len(stores) == 0 {
		return
	}

	cg := cfg.New(n.Name, n.Body)
	for _, st := range stores {
		after := stmtsAfter(cg, st.call)
		for _, stmt := range after {
			ast.Inspect(stmt, func(m ast.Node) bool {
				if _, isLit := m.(*ast.FuncLit); isLit {
					return false
				}
				lhs, ok := writeLHS(m)
				if !ok {
					return true
				}
				for _, l := range lhs {
					base, deep := sf.writeBase(l)
					if base == nil || !deep {
						continue
					}
					if identObj(pass.TypesInfo, base) == st.obj {
						storePos := pass.Fset.Position(st.call.Pos())
						pass.Reportf(l.Pos(),
							"write to %s after it was published by the Store at line %d; "+
								"published snapshots are frozen — mutate before the Store, or clone",
							exprText(pass.Fset, l), storePos.Line)
					}
				}
				return true
			})
		}
	}
}

// stmtsAfter returns the CFG statements strictly after the statement
// containing target, on any forward path.
func stmtsAfter(cg *cfg.Graph, target ast.Node) []ast.Node {
	containsTarget := func(stmt ast.Node) bool {
		found := false
		ast.Inspect(stmt, func(m ast.Node) bool {
			if m == ast.Node(target) {
				found = true
			}
			return !found
		})
		return found
	}
	var out []ast.Node
	var startBlocks []*cfg.Block
	for _, b := range cg.Blocks {
		for i, stmt := range b.Nodes {
			if containsTarget(stmt) {
				out = append(out, b.Nodes[i+1:]...)
				startBlocks = append(startBlocks, b.Succs...)
			}
		}
	}
	seen := map[int]bool{}
	work := startBlocks
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		out = append(out, b.Nodes...)
		work = append(work, b.Succs...)
	}
	return out
}

// publishedLocals classifies the function's own variables: published
// iff some assignment (or range binding) derives them from published
// memory. May-analysis — one publishing assignment taints the var.
func (sf *snapFreezer) publishedLocals(n *callgraph.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	if n.Body == nil {
		return out
	}
	mark := func(id *ast.Ident) {
		if obj := identObj(sf.g.Info, id); obj != nil {
			out[obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		before := len(out)
		ownWalkNode(n.Body, func(m ast.Node) {
			switch x := m.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						if id, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident); ok && sf.publishedExpr(x.Rhs[i], out) {
							mark(id)
						}
					}
				} else if len(x.Rhs) == 1 && sf.publishedExpr(x.Rhs[0], out) {
					for _, l := range x.Lhs {
						if id, ok := ast.Unparen(l).(*ast.Ident); ok {
							mark(id)
						}
					}
				}
			case *ast.RangeStmt:
				if sf.publishedExpr(x.X, out) {
					if id, ok := x.Value.(*ast.Ident); ok && refLike(sf.g.Info.TypeOf(id)) {
						mark(id)
					}
					if id, ok := x.Key.(*ast.Ident); ok && refLike(sf.g.Info.TypeOf(id)) {
						mark(id)
					}
				}
			}
		})
		if len(out) != before {
			changed = true
		}
	}
	return out
}

// publishedExpr reports whether e denotes memory derived from a
// published snapshot: a Load of the publish field, a call to a
// published-returning function, or a reference-typed chain rooted at a
// published local.
func (sf *snapFreezer) publishedExpr(e ast.Expr, locals map[types.Object]bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return sf.publishedCall(x, locals)
	case *ast.Ident:
		obj := identObj(sf.g.Info, x)
		return obj != nil && locals[obj]
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return sf.publishedExpr(x.X, locals)
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.SliceExpr:
		if !refLike(sf.g.Info.TypeOf(e)) {
			return false // copies detach from the published tree
		}
		if base := chainBase(e); base != nil {
			obj := identObj(sf.g.Info, base)
			return obj != nil && locals[obj]
		}
		return sf.chainHitsPublishedCall(e, locals)
	}
	return false
}

// publishedCall: a Load on the //walorder:publish field, a call to a
// function summarized as returning published memory, or a call whose
// result derives from a parameter that is published at this site
// (snap.stateOf(t) with snap published).
func (sf *snapFreezer) publishedCall(call *ast.CallExpr, locals map[types.Object]bool) bool {
	if _, _, field, isStore, ok := atomicStoreLoad(sf.g.Info, call); ok && !isStore {
		return field != nil && sf.ann.publishes[field]
	}
	callee, argAt := sf.calleeOf(call)
	if callee == nil {
		return false
	}
	if sf.retPub[callee] {
		return true
	}
	for i := range sf.retParam[callee] {
		if arg := argAt(i); arg != nil && sf.publishedExpr(arg, locals) {
			return true
		}
	}
	return false
}

// chainHitsPublishedCall walks a selector/index chain looking for a
// published-returning call in base position (db.snap.Load().tables[k]).
func (sf *snapFreezer) chainHitsPublishedCall(e ast.Expr, locals map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.CallExpr:
			return sf.publishedCall(x, locals)
		default:
			return false
		}
	}
}

// writeBase resolves a write target to its base identifier and whether
// the write goes through the heap (at least one selector/index/deref —
// reassigning a local wholesale is not a heap write).
func (sf *snapFreezer) writeBase(lhs ast.Expr) (*ast.Ident, bool) {
	deep := false
	e := lhs
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			deep = true
			e = x.X
		case *ast.IndexExpr:
			deep = true
			e = x.X
		case *ast.StarExpr:
			deep = true
			e = x.X
		case *ast.SliceExpr:
			deep = true
			e = x.X
		case *ast.Ident:
			return x, deep
		default:
			return nil, deep
		}
	}
}

// calleeOf resolves a call to its in-package graph node plus an
// accessor mapping callee parameter index (receiver = 0 for methods)
// to the argument expression at this site.
func (sf *snapFreezer) calleeOf(call *ast.CallExpr) (*callgraph.Node, func(int) ast.Expr) {
	var node *callgraph.Node
	var recv ast.Expr
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := sf.g.Info.Uses[f].(*types.Func); ok {
			node = sf.g.NodeOf(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := sf.g.Info.Uses[f.Sel].(*types.Func); ok {
			node = sf.g.NodeOf(fn)
			if sel, okS := sf.g.Info.Selections[f]; okS && sel.Kind() == types.MethodVal {
				recv = f.X
			}
		}
	case *ast.FuncLit:
		node = sf.g.LitNode(f)
	}
	if node == nil {
		return nil, nil
	}
	hasRecv := recv != nil
	return node, func(i int) ast.Expr {
		if hasRecv {
			if i == 0 {
				return recv
			}
			i--
		}
		if i >= 0 && i < len(call.Args) {
			return call.Args[i]
		}
		return nil
	}
}

// paramIndexes maps a node's parameter objects (receiver first, when
// present) to their summary indexes.
func paramIndexes(g *callgraph.Graph, n *callgraph.Node) map[types.Object]int {
	out := map[types.Object]int{}
	idx := 0
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				idx++
				continue
			}
			for _, name := range f.Names {
				if obj := g.Info.Defs[name]; obj != nil {
					out[obj] = idx
				}
				idx++
			}
		}
	}
	if n.Decl != nil {
		add(n.Decl.Recv)
		add(n.Decl.Type.Params)
	} else if n.Lit != nil {
		add(n.Lit.Type.Params)
	}
	return out
}

// writeLHS extracts write targets from a statement node.
func writeLHS(m ast.Node) ([]ast.Expr, bool) {
	switch x := m.(type) {
	case *ast.AssignStmt:
		return x.Lhs, true
	case *ast.IncDecStmt:
		return []ast.Expr{x.X}, true
	}
	return nil, false
}

// refLike: writing through a value of this type mutates shared memory
// (pointers, maps, slices); plain copies detach.
func refLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
