package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoLeak flags `go` statements in internal/engine whose goroutine has
// no visible cancellation or join mechanism. The engine's executor
// must never spawn a worker that can outlive its statement: a
// goroutine is accepted only if it receives a context or channel (as
// a parameter or argument), selects on or receives from a channel,
// ranges over a channel, or signals a WaitGroup/Context via a Done
// call (the workerLoop fan-out idiom). Anything else is a leak
// waiting for a stuck statement.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "flag go statements in internal/engine whose goroutine body has no cancellation " +
		"or join mechanism (no context/channel parameter, no select/receive, no Done call)",
	Run: runGoLeak,
}

func runGoLeak(pass *Pass) error {
	if !strings.HasSuffix(pass.Pkg.Path(), "internal/engine") {
		return nil
	}
	pass.inspect(func(n ast.Node, stack []ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if !goroutineGoverned(pass, g) {
			pass.Reportf(g.Pos(),
				"goroutine has no cancellation or join mechanism: pass a context or channel, "+
					"select/receive on one, or join it through a WaitGroup")
		}
		return true
	})
	return nil
}

// goroutineGoverned reports whether the spawned goroutine is visibly
// governed by a cancellation or join mechanism.
func goroutineGoverned(pass *Pass, g *ast.GoStmt) bool {
	// A context or channel handed to the goroutine counts, whatever
	// the callee does with it.
	for _, arg := range g.Call.Args {
		if governedType(pass.TypesInfo.TypeOf(arg)) {
			return true
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		// Named callee: its body is out of lexical reach, so only a
		// context/channel argument (above) can vouch for it.
		return false
	}
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			if governedType(pass.TypesInfo.TypeOf(f.Type)) {
				return true
			}
		}
	}
	governed := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if governed {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectStmt:
			governed = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				governed = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					governed = true
				}
			}
		case *ast.CallExpr:
			// wg.Done() (bounded join) or ctx.Done() (cancellation).
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(x.Args) == 0 {
				governed = true
			}
		case *ast.Ident:
			// A captured context or channel used anywhere in the body.
			if governedType(pass.TypesInfo.TypeOf(x)) {
				governed = true
			}
		}
		return !governed
	})
	return governed
}

// governedType reports whether t is a channel or context.Context.
func governedType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
	}
	return false
}
