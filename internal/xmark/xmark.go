// Package xmark generates deterministic XMark-like auction documents
// for the paper's XPathMark experiments (Section 5). The element
// vocabulary covers everything the benchmark queries touch; sizes are
// calibrated so that Scale=1 approximates the paper's "small" (12 MB)
// document's result cardinalities — e.g. 2175 items (Q1), 6025
// elements with an @id attribute (Q13) — and Scale=10 its "large"
// (113 MB) document.
package xmark

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
	"repro/internal/xmltree"
)

// regionSizes at Scale=1; namerica+samerica = 1100 matches the
// paper's Q5/Q22 cardinality.
var regionSizes = []struct {
	name  string
	items int
}{
	{"africa", 100},
	{"asia", 275},
	{"australia", 300},
	{"europe", 400},
	{"namerica", 750},
	{"samerica", 350},
}

// base counts at Scale=1 (see Q13: 2175+100+2550+1200 = 6025
// id-carrying elements, matching Appendix C).
const (
	baseCategories     = 100
	basePersons        = 2550
	baseOpenAuctions   = 1200
	baseClosedAuctions = 975
)

// Config controls generation.
type Config struct {
	Scale float64 // 1 = the paper's small document, 10 = large
	Seed  int64
}

// Schema returns the XMark schema graph.
func Schema() *schema.Schema {
	b := schema.NewBuilder("site")
	b.Element("site", "regions", "categories", "catgraph", "people", "open_auctions", "closed_auctions")
	regionNames := make([]string, len(regionSizes))
	for i, r := range regionSizes {
		regionNames[i] = r.name
	}
	b.Element("regions", regionNames...)
	for _, r := range regionNames {
		b.Element(r, "item")
	}
	b.Element("item", "location", "quantity", "name", "payment", "description", "shipping", "incategory", "mailbox")
	b.Attrs("item", "id", "featured")
	b.Element("description", "text", "parlist")
	b.Element("parlist", "listitem")
	b.Element("listitem", "text", "parlist")
	b.Element("text", "keyword", "bold", "emph")
	b.Element("bold", "keyword")
	b.Element("emph", "keyword")
	b.Element("mailbox", "mail")
	b.Element("mail", "from", "to", "date", "text")
	b.Element("incategory")
	b.Attrs("incategory", "category")
	b.Element("categories", "category")
	b.Element("category", "name", "description")
	b.Attrs("category", "id")
	b.Element("catgraph", "edge")
	b.Element("edge")
	b.Attrs("edge", "from", "to")
	b.Element("people", "person")
	b.Element("person", "name", "emailaddress", "phone", "address", "homepage", "creditcard", "profile", "watches")
	b.Attrs("person", "id")
	b.Element("address", "street", "city", "country", "zipcode")
	b.Element("profile", "interest", "education", "gender", "business", "age")
	b.Attrs("profile", "income")
	b.Element("interest")
	b.Attrs("interest", "category")
	b.Element("watches", "watch")
	b.Element("watch")
	b.Attrs("watch", "open_auction")
	b.Element("open_auctions", "open_auction")
	b.Element("open_auction", "initial", "reserve", "bidder", "current", "privacy", "itemref", "seller", "annotation", "quantity", "type", "interval")
	b.Attrs("open_auction", "id")
	b.Element("bidder", "date", "time", "personref", "increase")
	b.Element("personref")
	b.Attrs("personref", "person")
	b.Element("itemref")
	b.Attrs("itemref", "item")
	b.Element("seller")
	b.Attrs("seller", "person")
	b.Element("annotation", "author", "description", "happiness")
	b.Element("author")
	b.Attrs("author", "person")
	b.Element("interval", "start", "end")
	b.Element("closed_auctions", "closed_auction")
	b.Element("closed_auction", "seller", "buyer", "itemref", "price", "date", "quantity", "type", "annotation")
	b.Element("buyer")
	b.Attrs("buyer", "person")
	b.Text("location", "quantity", "name", "payment", "shipping", "keyword", "bold",
		"emph", "text", "from", "to", "date", "emailaddress", "phone", "street",
		"city", "country", "zipcode", "homepage", "creditcard", "education",
		"gender", "business", "age", "initial", "reserve", "current", "privacy",
		"time", "increase", "happiness", "start", "end", "price", "type")
	return b.MustBuild()
}

// generator carries shared state.
type generator struct {
	b       *xmltree.Builder
	r       *rand.Rand
	persons int
	items   int
	cfg     Config
}

// Generate builds a document.
func Generate(cfg Config) (*xmltree.Document, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	g := &generator{
		b:       xmltree.NewBuilder(),
		r:       rand.New(rand.NewSource(cfg.Seed)),
		persons: scaled(basePersons, cfg.Scale),
		cfg:     cfg,
	}
	for _, rs := range regionSizes {
		g.items += scaled(rs.items, cfg.Scale)
	}
	b := g.b
	b.Start("site")
	g.regions()
	g.categories()
	g.catgraph()
	g.people()
	g.openAuctions()
	g.closedAuctions()
	b.End()
	return b.Doc()
}

// MustGenerate panics on error (the builder is internally consistent).
func MustGenerate(cfg Config) *xmltree.Document {
	doc, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return doc
}

func scaled(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

var words = []string{
	"gold", "silver", "vintage", "rare", "classic", "mint", "signed",
	"original", "limited", "bargain", "estate", "antique", "custom",
	"imported", "handmade", "premium", "exotic", "royal", "grand", "prime",
}

func (g *generator) word() string { return words[g.r.Intn(len(words))] }

func (g *generator) sentence(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += g.word()
	}
	return out
}

func (g *generator) date() string {
	return fmt.Sprintf("%02d/%02d/%04d", 1+g.r.Intn(12), 1+g.r.Intn(28), 1998+g.r.Intn(4))
}

// text emits a <text> element with mixed content; keywords controls
// the exact number of <keyword> children (-1 = random 0..2).
func (g *generator) text(keywords int) {
	b := g.b
	b.Start("text")
	b.Text(g.sentence(3 + g.r.Intn(5)))
	if keywords < 0 {
		keywords = g.r.Intn(3)
	}
	for i := 0; i < keywords; i++ {
		b.Elem("keyword", g.word())
		b.Text(g.sentence(2))
	}
	if g.r.Intn(8) == 0 {
		b.Start("bold").Text(g.word())
		if g.r.Intn(2) == 0 {
			b.Elem("keyword", g.word())
		}
		b.End()
	}
	if g.r.Intn(10) == 0 {
		b.Start("emph").Text(g.word()).End()
	}
	b.End()
}

// description emits either a flat <text> or a <parlist> tree.
// keywords >= 0 forces the exact keyword count in a flat text.
func (g *generator) description(keywords int) {
	b := g.b
	b.Start("description")
	if keywords >= 0 {
		g.text(keywords)
		b.End()
		return
	}
	if g.r.Intn(100) < 65 {
		g.text(-1)
	} else {
		g.parlist(1 + g.r.Intn(2))
	}
	b.End()
}

func (g *generator) parlist(depth int) {
	b := g.b
	b.Start("parlist")
	for i, n := 0, 1+g.r.Intn(3); i < n; i++ {
		b.Start("listitem")
		if depth > 0 && g.r.Intn(4) == 0 {
			g.parlist(depth - 1)
		} else {
			g.text(-1)
		}
		b.End()
	}
	b.End()
}

func (g *generator) regions() {
	b := g.b
	b.Start("regions")
	itemID := 0
	for _, rs := range regionSizes {
		b.Start(rs.name)
		for i, n := 0, scaled(rs.items, g.cfg.Scale); i < n; i++ {
			g.item(itemID)
			itemID++
		}
		b.End()
	}
	b.End()
}

func (g *generator) item(id int) {
	b := g.b
	attrs := []string{"id", fmt.Sprintf("item%d", id)}
	if g.r.Intn(100) < 10 {
		attrs = append(attrs, "featured", "yes")
	}
	b.Start("item", attrs...)
	b.Elem("location", g.word())
	b.Elem("quantity", fmt.Sprintf("%d", 1+g.r.Intn(5)))
	b.Elem("name", g.sentence(2))
	b.Elem("payment", "Cash Creditcard")
	if id == 0 {
		// item0 (Q21): a description with exactly one keyword.
		g.description(1)
	} else {
		g.description(-1)
	}
	b.Elem("shipping", "Will ship internationally")
	for i, n := 0, g.r.Intn(3); i < n; i++ {
		b.Start("incategory", "category", fmt.Sprintf("category%d", g.r.Intn(scaled(baseCategories, g.cfg.Scale)))).End()
	}
	b.Start("mailbox")
	for i, n := 0, g.r.Intn(3); i < n; i++ {
		b.Start("mail")
		b.Elem("from", g.word())
		b.Elem("to", g.word())
		b.Elem("date", g.date())
		g.text(-1)
		b.End()
	}
	b.End()
	b.End()
}

func (g *generator) categories() {
	b := g.b
	b.Start("categories")
	for i, n := 0, scaled(baseCategories, g.cfg.Scale); i < n; i++ {
		b.Start("category", "id", fmt.Sprintf("category%d", i))
		b.Elem("name", g.word())
		g.description(-1)
		b.End()
	}
	b.End()
}

func (g *generator) catgraph() {
	b := g.b
	n := scaled(baseCategories, g.cfg.Scale)
	b.Start("catgraph")
	for i := 0; i < n; i++ {
		b.Start("edge",
			"from", fmt.Sprintf("category%d", g.r.Intn(n)),
			"to", fmt.Sprintf("category%d", g.r.Intn(n))).End()
	}
	b.End()
}

func (g *generator) people() {
	b := g.b
	b.Start("people")
	for i, n := 0, g.persons; i < n; i++ {
		b.Start("person", "id", fmt.Sprintf("person%d", i))
		b.Elem("name", g.sentence(2))
		b.Elem("emailaddress", "mailto:"+g.word()+"@example.com")
		// Probabilities calibrated to Q23 (952/2550) and Q24 (1304/2550).
		if g.r.Intn(100) < 35 {
			b.Elem("phone", fmt.Sprintf("+%d", g.r.Intn(1000000)))
		}
		if g.r.Intn(100) < 55 {
			b.Start("address")
			b.Elem("street", g.sentence(2))
			b.Elem("city", g.word())
			b.Elem("country", "United States")
			b.Elem("zipcode", fmt.Sprintf("%d", g.r.Intn(99999)))
			b.End()
		}
		if g.r.Intn(100) < 49 {
			b.Elem("homepage", "http://www.example.com/~"+g.word())
		}
		if g.r.Intn(100) < 30 {
			b.Elem("creditcard", fmt.Sprintf("%d %d", g.r.Intn(9999), g.r.Intn(9999)))
		}
		if g.r.Intn(100) < 40 {
			b.Start("profile", "income", fmt.Sprintf("%d", 20000+g.r.Intn(80000)))
			for j, m := 0, g.r.Intn(3); j < m; j++ {
				b.Start("interest", "category", fmt.Sprintf("category%d", g.r.Intn(scaled(baseCategories, g.cfg.Scale)))).End()
			}
			if g.r.Intn(2) == 0 {
				b.Elem("education", "Graduate School")
			}
			b.Elem("gender", []string{"male", "female"}[g.r.Intn(2)])
			b.Elem("business", []string{"Yes", "No"}[g.r.Intn(2)])
			if g.r.Intn(2) == 0 {
				b.Elem("age", fmt.Sprintf("%d", 18+g.r.Intn(60)))
			}
			b.End()
		}
		if g.r.Intn(100) < 20 {
			b.Start("watches")
			for j, m := 0, 1+g.r.Intn(2); j < m; j++ {
				b.Start("watch", "open_auction", fmt.Sprintf("open_auction%d", g.r.Intn(scaled(baseOpenAuctions, g.cfg.Scale)))).End()
			}
			b.End()
		}
		b.End()
	}
	b.End()
}

// personRef returns a person id for ordinary bidders; person0 and
// person1 are reserved so that Q11's cardinality is controlled
// exactly (one bidder for each, planted below).
func (g *generator) personRef() string {
	return fmt.Sprintf("person%d", 2+g.r.Intn(g.persons-2))
}

func (g *generator) openAuctions() {
	b := g.b
	n := scaled(baseOpenAuctions, g.cfg.Scale)
	b.Start("open_auctions")
	for i := 0; i < n; i++ {
		b.Start("open_auction", "id", fmt.Sprintf("open_auction%d", i))
		b.Elem("initial", fmt.Sprintf("%d.%02d", 10+g.r.Intn(200), g.r.Intn(100)))
		if g.r.Intn(2) == 0 {
			b.Elem("reserve", fmt.Sprintf("%d.00", 50+g.r.Intn(300)))
		}
		start := g.date()
		bidders := g.r.Intn(4)
		switch i {
		case 0:
			bidders = 4 // Q9: open_auction0 has 4 bidders -> 3 preceding siblings
		case 100, 200:
			// Q11 plants its person0/person1 bidders here.
			if bidders == 0 {
				bidders = 1
			}
		}
		for j := 0; j < bidders; j++ {
			ref := g.personRef()
			if i == 100 && j == 0 {
				ref = "person0" // Q11: the single preceding person0 bidder
			}
			if i == 200 && j == 0 {
				ref = "person1" // Q11: the single person1 bidder
			}
			date := g.date()
			if i%150 == 1 && j == 0 {
				date = start // Q-A: bidder/date = interval/start
			}
			b.Start("bidder")
			b.Elem("date", date)
			b.Elem("time", fmt.Sprintf("%02d:%02d:00", g.r.Intn(24), g.r.Intn(60)))
			b.Start("personref", "person", ref).End()
			b.Elem("increase", fmt.Sprintf("%d.00", 1+g.r.Intn(20)))
			b.End()
		}
		b.Elem("current", fmt.Sprintf("%d.00", 20+g.r.Intn(400)))
		if g.r.Intn(3) == 0 {
			b.Elem("privacy", "Yes")
		}
		b.Start("itemref", "item", fmt.Sprintf("item%d", g.r.Intn(g.items))).End()
		b.Start("seller", "person", g.personRef()).End()
		b.Start("annotation")
		b.Start("author", "person", g.personRef()).End()
		g.description(-1)
		b.Elem("happiness", fmt.Sprintf("%d", 1+g.r.Intn(10)))
		b.End()
		b.Elem("quantity", "1")
		b.Elem("type", "Regular")
		b.Start("interval")
		b.Elem("start", start)
		b.Elem("end", g.date())
		b.End()
		b.End()
	}
	b.End()
}

func (g *generator) closedAuctions() {
	b := g.b
	n := scaled(baseClosedAuctions, g.cfg.Scale)
	b.Start("closed_auctions")
	for i := 0; i < n; i++ {
		b.Start("closed_auction")
		b.Start("seller", "person", g.personRef()).End()
		b.Start("buyer", "person", g.personRef()).End()
		b.Start("itemref", "item", fmt.Sprintf("item%d", g.r.Intn(g.items))).End()
		b.Elem("price", fmt.Sprintf("%d.00", 30+g.r.Intn(500)))
		b.Elem("date", g.date())
		b.Elem("quantity", "1")
		b.Elem("type", "Regular")
		b.Start("annotation")
		b.Start("author", "person", g.personRef()).End()
		// Closed-auction descriptions lean toward parlists so Q2's path
		// (annotation/description/parlist/listitem/text/keyword) has
		// a few hundred matches at Scale=1.
		b.Start("description")
		if g.r.Intn(100) < 60 {
			g.parlist(1)
		} else {
			g.text(-1)
		}
		b.End()
		b.Elem("happiness", fmt.Sprintf("%d", 1+g.r.Intn(10)))
		b.End() // annotation
		b.End() // closed_auction
	}
	b.End()
}

// Queries is the XPathMark query subset of the paper's Appendix B
// plus the join query Q-A of Section 5.
var Queries = []struct {
	ID    string
	XPath string
}{
	{"Q1", "/site/regions/*/item"},
	{"Q2", "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/text/keyword"},
	{"Q3", "//keyword"},
	{"Q4", "/descendant-or-self::listitem/descendant-or-self::keyword"},
	{"Q5", "/site/regions/*/item[parent::namerica or parent::samerica]"},
	{"Q6", "//keyword/ancestor::listitem"},
	{"Q7", "//keyword/ancestor-or-self::mail"},
	{"Q9", "/site/open_auctions/open_auction[@id='open_auction0']/bidder/preceding-sibling::bidder"},
	{"Q10", "/site/regions/*/item[@id='item0']/following::item"},
	{"Q11", "/site/open_auctions/open_auction/bidder[personref/@person='person1']/preceding::bidder[personref/@person='person0']"},
	{"Q12", "//item[@featured='yes']"},
	{"Q13", "//*[@id]"},
	{"Q21", "/site/regions/*/item[@id='item0']/description//keyword/text()"},
	{"Q22", "/site/regions/namerica/item | /site/regions/samerica/item"},
	{"Q23", "/site/people/person[address and (phone or homepage)]"},
	{"Q24", "/site/people/person[not(homepage)]"},
	{"QA", "/site/open_auctions/open_auction[bidder/date = interval/start]"},
}
