package transcheck

import (
	"testing"

	"repro/internal/xpath"
)

// TestMatrix is the synthetic half of the CI gate: every Table 1
// derivation over the full axis/shape matrix must be language-
// equivalent to the reference automaton.
func TestMatrix(t *testing.T) {
	findings, stats, err := CheckMatrix()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	t.Logf("matrix: %d derivations checked", stats.Checked)
}

// TestCorpus is the corpus half of the gate: every pattern the
// translator constructs while translating the fig3 and XPathMark
// query sets (under both translators) must be equivalent to its
// reference automaton.
func TestCorpus(t *testing.T) {
	findings, stats, err := CheckCorpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	t.Logf("corpus: %d queries translated, %d distinct patterns checked", stats.Queries, stats.Checked)
}

// TestReferenceRejectsBrokenPatterns pins that the checker actually
// discriminates: hand-broken variants of correct translator output
// must produce witnesses.
func TestReferenceRejectsBrokenPatterns(t *testing.T) {
	steps := []*xpath.Step{
		{Axis: xpath.Child, Test: xpath.NameTest, Name: "a"},
		{Axis: xpath.Descendant, Test: xpath.NameTest, Name: "b"},
	}
	cases := []struct {
		name    string
		kind    string
		pattern string
	}{
		// Descendant demoted to child: misses /a/x/b.
		{"descendant-as-child", "forward", "^/a/b$"},
		// Gap made mandatory: misses the direct child /a/b.
		{"mandatory-gap", "forward", "^/a/(.+/)+b$"},
		// Wrong leaf name.
		{"wrong-name", "forward", "^/a/(.+/)?c$"},
	}
	for _, tc := range cases {
		f := checkOne("broken/"+tc.name, tc.kind, steps, true, "", tc.pattern, true)
		if f == nil {
			t.Errorf("%s: checker accepted broken pattern %q", tc.name, tc.pattern)
			continue
		}
		if f.Err != "" {
			t.Errorf("%s: checker errored instead of producing a witness: %s", tc.name, f.Err)
			continue
		}
		t.Logf("%s: witness %q", tc.name, f.Witness)
	}
}

// TestSegmentGapVsDotPlus pins the domain-restriction argument from
// the design notes: '(.+/)?' and a segment-structured gap are NOT
// equivalent over all strings (the former admits empty and
// slash-bearing "segments"), but they agree on every valid path
// string, which is all the engine ever matches against.
func TestSegmentGapVsDotPlus(t *testing.T) {
	steps := []*xpath.Step{
		{Axis: xpath.Descendant, Test: xpath.NameTest, Name: "a"},
	}
	// The translator's own anchored pattern for /descendant::a.
	if f := checkOne("gap", "forward", steps, true, "", "^/(.+/)?a$", true); f != nil {
		t.Errorf("in-domain check rejected translator pattern: %s", f)
	}
	// The same pair compared over all of Σ* must differ.
	ref, err := referenceForward(steps, true, "")
	if err != nil {
		t.Fatal(err)
	}
	got := mustCompile(t, "^/(.+/)?a$")
	eq, witness, err := equivalentAll(got, ref)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("(.+/)? and segment gap reported equivalent over Σ*; domain restriction would be vacuous")
	}
	t.Logf("Σ* witness: %q", witness)
}
