// Command xvet is the repository's multichecker: it runs the standard
// `go vet` passes and then the custom invariant analyzers from
// internal/analysis (rawsql, deweycmp, regexploop, errdrop,
// recoverguard, opstats, ctxflow, lockscope, sqltaint, hotalloc,
// xvetignore) that enforce the paper-derived disciplines the type
// system cannot see.
//
// Usage:
//
//	xvet [-novet] [-only name,name] [-list] [-json] [packages]
//	xvet -transcheck [-json]
//
// Packages default to ./... resolved against the enclosing module.
// Exit status is nonzero if go vet fails or any analyzer reports a
// diagnostic. -novet skips the go vet subprocess (CI runs it as its
// own step); -only restricts the custom analyzers; -json emits
// machine-readable diagnostics on stdout instead of the text form.
//
// -transcheck runs the static translation validator instead of the
// analyzers: every Table 1 pattern derivation — over a synthetic
// axis/shape matrix and over all patterns traced while translating
// the fig3 and XPathMark query corpora — is checked for language
// equivalence against a reference automaton built directly from the
// axis semantics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis"
	"repro/internal/transcheck"
)

// jsonDiag is the machine-readable diagnostic form emitted by -json:
// one JSON object per line (JSON Lines), stable field names.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	novet := flag.Bool("novet", false, "skip running the standard `go vet` passes first")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list the custom analyzers and exit")
	asJSON := flag.Bool("json", false, "emit diagnostics as JSON Lines on stdout")
	trans := flag.Bool("transcheck", false, "run the static translation validator instead of the analyzers")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *trans {
		os.Exit(runTranscheck(*asJSON))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if !*novet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	analyzers, err := selectAnalyzers(*only)
	if err == nil {
		var n int
		n, err = runAnalyzers(analyzers, patterns, *asJSON)
		if n > 0 {
			failed = true
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xvet:", err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analysis.All(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a := analysis.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func runAnalyzers(analyzers []*analysis.Analyzer, patterns []string, asJSON bool) (int, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.Packages(patterns...)
	if err != nil {
		return 0, err
	}
	enc := json.NewEncoder(os.Stdout)
	count := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			return count, err
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if asJSON {
				if err := enc.Encode(jsonDiag{
					File:     pos.Filename,
					Line:     pos.Line,
					Column:   pos.Column,
					Analyzer: d.Analyzer.Name,
					Message:  d.Message,
				}); err != nil {
					return count, err
				}
			} else {
				fmt.Printf("%s: %s: %s\n", pos, d.Analyzer.Name, d.Message)
			}
			count++
		}
	}
	return count, nil
}

// runTranscheck executes both halves of the translation validator and
// reports findings; the exit status is the CI gate.
func runTranscheck(asJSON bool) int {
	type result struct {
		name     string
		findings []transcheck.Finding
		stats    transcheck.Stats
	}
	var results []result
	fail := false

	mf, ms, err := transcheck.CheckMatrix()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xvet: transcheck matrix:", err)
		return 1
	}
	results = append(results, result{"matrix", mf, ms})

	cf, cs, err := transcheck.CheckCorpus()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xvet: transcheck corpus:", err)
		return 1
	}
	results = append(results, result{"corpus", cf, cs})

	enc := json.NewEncoder(os.Stdout)
	for _, r := range results {
		for _, f := range r.findings {
			fail = true
			if asJSON {
				if err := enc.Encode(f); err != nil {
					fmt.Fprintln(os.Stderr, "xvet:", err)
					return 1
				}
			} else {
				fmt.Printf("transcheck: %s\n", f)
			}
		}
		if !asJSON {
			switch r.name {
			case "matrix":
				fmt.Printf("transcheck: matrix: %d derivations checked, %d findings\n",
					r.stats.Checked, len(r.findings))
			case "corpus":
				fmt.Printf("transcheck: corpus: %d queries translated, %d distinct patterns checked, %d findings\n",
					r.stats.Queries, r.stats.Checked, len(r.findings))
			}
		}
	}
	if fail {
		return 1
	}
	return 0
}
