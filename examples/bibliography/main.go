// Bibliography: the DBLP scenario from the paper's evaluation,
// showcasing what recursion does to the translation. The title markup
// elements (sub/sup/i) are mutually recursive, so the schema graph
// marks them I-P (infinite paths) and the translator keeps their
// path-regex filters — while non-recursive elements like 'author'
// resolve statically (U-P/F-P) and skip the paths join entirely
// (Section 4.5).
package main

import (
	"fmt"
	"log"

	"repro/internal/dblp"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/xrel"
)

func main() {
	s := dblp.Schema()

	fmt.Println("schema-graph marking (Section 4.5):")
	for _, n := range s.Nodes() {
		detail := ""
		switch n.Mark {
		case schema.UniquePath:
			detail = n.RootPaths[0]
		case schema.FinitePaths:
			detail = fmt.Sprintf("%d possible paths", len(n.RootPaths))
		case schema.InfinitePaths:
			detail = "recursive"
		}
		fmt.Printf("  %-14s %-4s %s\n", shred.RelName(n.Name), n.Mark, detail)
	}
	fmt.Println()

	doc := dblp.MustGenerate(dblp.Config{Scale: 0.2, Seed: 3})
	store, err := xrel.Open(s)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.Load(doc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bibliography: %d nodes, %d distinct paths\n\n", doc.Len(), store.PathCount())

	for _, q := range dblp.Queries {
		sql, err := store.Translate(q.XPath)
		if err != nil {
			log.Fatal(err)
		}
		res, err := store.Query(q.XPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", q.ID, q.XPath)
		fmt.Printf("  SQL: %s\n", sql.Text)
		fmt.Printf("  -> %d node(s)\n\n", len(res.Nodes))
	}

	// Recursive descent: the '//sup' inside QD2 cannot drop its path
	// filter (sup is I-P), but '/dblp/inproceedings/title/sup' (QD3)
	// pins an exact path; show the regex difference.
	qd2, err := store.Translate("/dblp/inproceedings[year>=1994]//sup")
	if err != nil {
		log.Fatal(err)
	}
	qd3, err := store.Translate("/dblp/inproceedings/title/sup")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recursion and path filters:")
	fmt.Printf("  QD2 joins %d relation(s): %s\n", qd2.Joins, qd2.Text)
	fmt.Printf("  QD3 joins %d relation(s): %s\n", qd3.Joins, qd3.Text)
}
