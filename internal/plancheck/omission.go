package plancheck

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pathre"
	"repro/internal/schema"
)

// ValidateOmission re-derives one Section 4.5 path-filter decision
// from scratch — recompiling the pattern and recounting the matching
// root paths — and reports a finding when the translator's decision
// is not justified by that independent evidence. nil means the
// decision is proven.
func ValidateOmission(tr core.OmissionTrace) *Finding {
	fail := func(detail string) *Finding {
		return &Finding{
			Rule: "omission",
			Detail: fmt.Sprintf("node %s (%s, %d root paths), pattern %q, decision %s: %s",
				tr.Node.Name, tr.Node.Mark, len(tr.Node.RootPaths), tr.Pattern, tr.Decision, detail),
		}
	}
	if tr.Decision == schema.KeepFilter {
		// Keeping the dynamic filter is always sound.
		return nil
	}
	if tr.Node.Mark == schema.InfinitePaths {
		return fail("static decisions require a finite path set (U-P or F-P marking)")
	}
	re, err := pathre.Compile(tr.Pattern)
	if err != nil {
		return fail("pattern does not compile: " + err.Error())
	}
	matched := 0
	for _, p := range tr.Node.RootPaths {
		if re.MatchString(p) {
			matched++
		}
	}
	total := len(tr.Node.RootPaths)
	if tr.Evidence.Matched != matched || tr.Evidence.Total != total {
		return fail(fmt.Sprintf("evidence claims %d/%d matching paths, recount finds %d/%d",
			tr.Evidence.Matched, tr.Evidence.Total, matched, total))
	}
	switch tr.Decision {
	case schema.OmitFilter:
		if matched != total {
			return fail(fmt.Sprintf("only %d of %d root paths match — omitting the filter would admit the other %d", matched, total, total-matched))
		}
	case schema.EmptyResult:
		if matched != 0 {
			return fail(fmt.Sprintf("%d of %d root paths match — the result is not statically empty", matched, total))
		}
		if total == 0 {
			return fail("a node with no root paths omits the filter, it does not empty the result")
		}
	default:
		return fail("unknown decision")
	}
	return nil
}

// ValidateOmissions validates a batch of traces, labelling findings.
func ValidateOmissions(query string, traces []core.OmissionTrace) []Finding {
	var fs []Finding
	for _, tr := range traces {
		if f := ValidateOmission(tr); f != nil {
			f.Query = query
			fs = append(fs, *f)
		}
	}
	return fs
}
