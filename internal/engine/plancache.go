package engine

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/failpoint"
	"repro/internal/sqlast"
)

// planCacheCap bounds the number of cached compiled statements per DB.
const planCacheCap = 256

// compiledStmt is a fully planned statement (exactly one of sel/union
// is set) plus the snapshot states of every table it was planned
// against.
type compiledStmt struct {
	sel    *selectPlan
	union  *unionPlan
	tables []tableVer
	// nOps is the number of operator nodes lowerStmt assigned across
	// the whole statement (including subplans and union branches): the
	// size of the per-execution stats frame.
	nOps int
	// feedback holds the merged OpStats frame of the most recent
	// successful execution (stored by runCompiledFrame after the frame
	// is finalized), read on the next plan-cache hit to detect
	// mis-estimated plans. Atomic: executions and cache lookups race.
	feedback atomic.Pointer[opFrame]
	// replans counts how many adaptive re-plans led to this plan,
	// bounded by maxAdaptiveReplans so estimation noise cannot cause
	// plan flapping. Written only at compile time.
	replans int
}

// tableVer pins the state a table had at plan time. States are
// immutable and never reused across versions, so pointer equality
// against the current snapshot is exactly "the table has not been
// mutated since planning".
type tableVer struct {
	t  *Table
	st *tableState
}

// fresh reports whether none of the plan's tables have been mutated
// since planning, judged against the given snapshot.
func (cs *compiledStmt) fresh(snap *dbSnap) bool {
	for _, tv := range cs.tables {
		if snap.stateOf(tv.t) != tv.st {
			return false
		}
	}
	return true
}

// unionPlan is the compiled form of a UNION statement: per-branch
// plans plus the union-level ORDER BY resolved to projected column
// positions.
type unionPlan struct {
	branches  []*selectPlan
	cols      []string
	orderPos  []int
	orderDesc []bool
	phys      *physUnion // union-level operators, set by lowerStmt
}

// ovEst is one alias's observed cardinalities injected by adaptive
// re-planning: rows is the per-binding output after the step's
// residual filters, access the per-binding output of its access path
// (0 = not observed separately). after pins the join position the
// numbers were observed in (boundKey of the aliases bound before the
// step): a per-binding cardinality is meaningless at any other
// position — a probed table yields ~1 row per binding where a leading
// scan of the same table yields the whole relation — and applying it
// regardless of position makes consecutive re-plans invert the join
// order and chase their own estimates.
type ovEst struct {
	rows, access float64
	after        string
}

// boundKey canonicalizes a bound-alias set for ovEst.after matching.
func boundKey(bound map[string]bool) string {
	names := make([]string, 0, len(bound))
	for n := range bound {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// planOverrides carries observed per-alias cardinalities for adaptive
// re-planning: sel for a plain SELECT, branches aligned with a UNION's
// branch order (branch alias spaces are independent, so one flat map
// would cross-contaminate branches that reuse aliases), and subs for
// correlated subselects keyed by their rendered source text (join
// reordering changes the order subselects are compiled in, so a
// positional index would misroute them; identical subqueries share one
// map, which is sound because identical text is identical semantics).
type planOverrides struct {
	sel      map[string]ovEst
	branches []map[string]ovEst
	subs     map[string]map[string]ovEst
}

// compileStmt plans a statement from scratch against one database
// snapshot, recording the pinned states of all tables it touches
// (including correlated-subquery tables).
func compileStmt(db *DB, st sqlast.Statement) (*compiledStmt, error) {
	return compileStmtOverrides(db, st, nil)
}

// compileStmtOverrides is compileStmt with observed-cardinality
// overrides injected into the planner (adaptive re-planning).
func compileStmtOverrides(db *DB, st sqlast.Statement, ov *planOverrides) (*compiledStmt, error) {
	p := &planner{db: db, snap: db.loadSnap(), touched: map[*Table]bool{}}
	if ov != nil {
		p.subOverrides = ov.subs
	}
	cs := &compiledStmt{}
	switch s := st.(type) {
	case *sqlast.Select:
		if ov != nil {
			p.overrides = ov.sel
		}
		plan, err := p.planSelect(s, nil)
		if err != nil {
			return nil, err
		}
		cs.sel = plan
	case *sqlast.Union:
		u := &unionPlan{}
		for i, branch := range s.Selects {
			p.overrides = nil
			if ov != nil && i < len(ov.branches) {
				p.overrides = ov.branches[i]
			}
			plan, err := p.planSelect(branch, nil)
			if err != nil {
				return nil, err
			}
			if len(u.branches) == 0 {
				u.cols = plan.colNames
				// Resolve union ORDER BY keys to projected column positions.
				for _, k := range s.OrderBy {
					col, ok := k.Expr.(*sqlast.Col)
					if !ok {
						return nil, fmt.Errorf("engine: UNION ORDER BY must reference an output column")
					}
					pos := -1
					for i, name := range plan.colNames {
						if name == col.Column || name == col.String() {
							pos = i
							break
						}
					}
					if pos < 0 {
						return nil, fmt.Errorf("engine: UNION ORDER BY column %q not in output", col)
					}
					u.orderPos = append(u.orderPos, pos)
					u.orderDesc = append(u.orderDesc, k.Desc)
				}
			} else if len(plan.colNames) != len(u.cols) {
				return nil, fmt.Errorf("engine: UNION branches project different column counts")
			}
			u.branches = append(u.branches, plan)
		}
		cs.union = u
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", st)
	}
	for t := range p.touched {
		cs.tables = append(cs.tables, tableVer{t: t, st: p.snap.stateOf(t)})
	}
	// Lower to the physical operator tree, then derive the vectorized
	// filter metadata, before the plan can be published to (and shared
	// through) the plan cache.
	lowerStmt(cs)
	vectorizeStmt(cs)
	return cs, nil
}

// planCache is a bounded LRU of compiled statements keyed on rendered
// SQL. A hit whose table versions are stale counts as a miss and is
// evicted; the caller then re-plans and re-inserts.
type planCache struct {
	mu sync.Mutex
	//guardedby:mu
	lru *list.List // front = most recently used; values are *planEntry
	//guardedby:mu
	byKey map[string]*list.Element
	//guardedby:mu
	hits uint64
	//guardedby:mu
	misses uint64
}

type planEntry struct {
	key string
	cs  *compiledStmt
}

// get returns the cached plan for key, or nil on miss/stale; snap is
// the snapshot freshness is judged against.
func (c *planCache) get(key string, snap *dbSnap) *compiledStmt {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if ok {
		cs := el.Value.(*planEntry).cs
		if cs.fresh(snap) {
			c.hits++
			c.lru.MoveToFront(el)
			return cs
		}
		c.lru.Remove(el)
		delete(c.byKey, key)
	}
	c.misses++
	return nil
}

// put inserts a freshly compiled plan, evicting the least recently
// used entry beyond capacity. A plan whose table states have
// already moved on is not inserted: a compile that raced with a
// mutation (or an evicted plan whose execution was still in flight)
// must not re-enter the cache with stale pins, where it would
// evict a good entry and force the next lookup through the
// stale-detection miss path.
func (c *planCache) put(key string, cs *compiledStmt, snap *dbSnap) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !cs.fresh(snap) {
		return
	}
	if c.lru == nil {
		c.lru = list.New()
		c.byKey = map[string]*list.Element{}
	}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*planEntry).cs = cs
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&planEntry{key: key, cs: cs})
	for c.lru.Len() > planCacheCap {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.byKey, el.Value.(*planEntry).key)
	}
}

// size returns the number of cached plans.
func (c *planCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lru == nil {
		return 0
	}
	return c.lru.Len()
}

// stats returns cumulative hit/miss counters.
func (c *planCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// compiledFor returns a compiled plan for st, consulting the DB's
// plan cache. key is the canonical cache key (the sqlast rendering of
// st); pass "" to have it computed here.
func (db *DB) compiledFor(st sqlast.Statement, key string) (*compiledStmt, error) {
	if key == "" {
		key = sqlast.Render(st)
	}
	if cs := db.plans.get(key, db.loadSnap()); cs != nil {
		if next := db.maybeReplan(st, key, cs); next != nil {
			return next, nil
		}
		return cs, nil
	}
	cs, err := compileStmt(db, st)
	if err != nil {
		return nil, err
	}
	traceCompiled(st, key, cs)
	if err := failpoint.Inject("engine/plancache-insert"); err != nil {
		return nil, err
	}
	db.plans.put(key, cs, db.loadSnap())
	return cs, nil
}

// planFeedback compares the plan's per-step estimates with the
// observed stats of its last execution and returns the observed
// per-binding cardinalities keyed the way compileStmtOverrides
// expects, plus the worst per-step q-error. Steps that never executed
// (loops == 0) contribute nothing.
func planFeedback(cs *compiledStmt, frame opFrame) (*planOverrides, float64) {
	worst := 1.0
	collect := func(p *selectPlan) map[string]ovEst {
		m := map[string]ovEst{}
		bound := map[string]bool{}
		for i, s := range p.steps {
			after := boundKey(bound)
			bound[s.name] = true
			// The scan operator observes the access path's output; the
			// filter operator (when the step has one) the post-filter
			// rows — mirroring exactly what lowerSelect annotates each
			// node with, so a re-planned plan's q-errors collapse to 1.
			scan := frame[p.phys.scans[i].id]
			if scan.loops == 0 {
				continue
			}
			obsAccess := float64(scan.rowsOut) / float64(scan.loops)
			obsRows := obsAccess
			if f := p.phys.filters[i]; f != nil {
				// Vectorized filters run per scan batch, not per binding,
				// so their own loop counter stays zero; the total filter
				// output over the scan's bindings is the per-binding
				// post-filter cardinality either way.
				obsRows = float64(frame[f.id].rowsOut) / float64(scan.loops)
				if q := qError(s.estAccess, obsAccess); q > worst {
					worst = q
				}
			}
			m[s.name] = ovEst{rows: obsRows, access: obsAccess, after: after}
			if q := qError(s.estRows, obsRows); q > worst {
				worst = q
			}
		}
		return m
	}
	ov := &planOverrides{subs: map[string]map[string]ovEst{}}
	// Correlated subplans carry their own per-step estimates and stats;
	// their observations route back by rendered source (selectPlan.src).
	var collectSubs func(p *selectPlan)
	collectSubs = func(p *selectPlan) {
		for _, n := range p.phys.ops {
			for _, ref := range n.sub {
				if m := collect(ref.plan); len(m) > 0 && ref.plan.src != "" {
					ov.subs[ref.plan.src] = m
				}
				collectSubs(ref.plan)
			}
		}
	}
	if cs.sel != nil {
		ov.sel = collect(cs.sel)
		collectSubs(cs.sel)
	} else {
		for _, b := range cs.union.branches {
			ov.branches = append(ov.branches, collect(b))
			collectSubs(b)
		}
	}
	return ov, worst
}

// maybeReplan implements adaptive re-planning on a plan-cache hit:
// when the cached plan's last observed OpStats contradict its
// cardinality estimates beyond replanQErrorThreshold, the statement is
// re-planned with the observed cardinalities injected as overrides and
// the cache entry replaced. Returns nil when the cached plan stands.
// Re-planning is bounded (maxAdaptiveReplans) and version-safe: the
// new plan pins the current snapshot like any fresh compile, so a
// racing commit simply retires it through the normal freshness check.
func (db *DB) maybeReplan(st sqlast.Statement, key string, cs *compiledStmt) *compiledStmt {
	if db.heuristicPlans.Load() || cs.replans >= maxAdaptiveReplans {
		return nil
	}
	fb := cs.feedback.Load()
	if fb == nil {
		return nil
	}
	ov, worst := planFeedback(cs, *fb)
	if worst <= replanQErrorThreshold {
		return nil
	}
	next, err := compileStmtOverrides(db, st, ov)
	if err != nil {
		return nil
	}
	next.replans = cs.replans + 1
	db.replanCount.Add(1)
	traceCompiled(st, key, next)
	db.plans.put(key, next, db.loadSnap())
	return next
}

// PlanCacheSize returns the number of cached query plans.
func (db *DB) PlanCacheSize() int { return db.plans.size() }

// PlanCacheStats returns cumulative plan-cache hit and miss counts.
// Lookups that find an entry invalidated by a table mutation count as
// misses.
func (db *DB) PlanCacheStats() (hits, misses uint64) { return db.plans.stats() }

// Prepared is a parsed statement bound to a DB for repeated
// execution. Its plan lives in the DB's plan cache: re-running reuses
// the cached plan until a touched table is mutated, after which the
// next run transparently re-plans.
type Prepared struct {
	db  *DB
	st  sqlast.Statement
	key string
}

// Prepare parses a SELECT/UNION statement for repeated execution.
func (db *DB) Prepare(src string) (*Prepared, error) {
	st, err := sqlast.Parse(src)
	if err != nil {
		return nil, err
	}
	return db.PrepareStmt(st), nil
}

// PrepareStmt binds an already-parsed statement for repeated
// execution.
func (db *DB) PrepareStmt(st sqlast.Statement) *Prepared {
	return &Prepared{db: db, st: st, key: sqlast.Render(st)}
}

// Run executes the prepared statement with default options.
func (p *Prepared) Run() (*Result, error) { return p.RunWithOptions(ExecOptions{}) }

// RunWithOptions executes the prepared statement.
func (p *Prepared) RunWithOptions(opts ExecOptions) (*Result, error) {
	return p.RunWithOptionsContext(nil, opts)
}

// RunContext executes the prepared statement honoring cancellation.
func (p *Prepared) RunContext(ctx context.Context) (*Result, error) {
	return p.RunWithOptionsContext(ctx, ExecOptions{})
}

// RunWithOptionsContext executes the prepared statement with options,
// honoring ctx cancellation (nil means no context). Like
// DB.RunWithOptionsContext it is a statement boundary: internal
// panics return as *InternalError.
func (p *Prepared) RunWithOptionsContext(ctx context.Context, opts ExecOptions) (res *Result, err error) {
	defer guardPanics(p.key, &err)
	cs, err := p.db.compiledFor(p.st, p.key)
	if err != nil {
		return nil, err
	}
	if opts.VerifyPlan {
		if err := verifyCompiled(p.st, p.key, cs); err != nil {
			return nil, err
		}
	}
	return p.db.runCompiled(ctx, cs, opts, p.key)
}
