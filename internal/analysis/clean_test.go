package analysis_test

import (
	"sync"
	"testing"

	"repro/internal/analysis"
)

// One loader for every clean-package check in this test binary: the
// standard library is type-checked from source once and cached.
var (
	loaderOnce sync.Once
	loader     *analysis.Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = analysis.NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loader
}

// expectClean asserts that the analyzer reports nothing on the given
// real (module-internal) packages — the sanctioned idioms must not be
// flagged.
func expectClean(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := sharedLoader(t)
	for _, path := range pkgPaths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: unexpected %s diagnostic: %s",
				pkg.Fset.Position(d.Pos), a.Name, d.Message)
		}
	}
}

// TestProtocolPackagesCleanUnderAllAnalyzers pins the two packages at
// the heart of the publication protocol — the WAL and the synopsis
// store — clean under the full analyzer set: the annotated contract
// (//guardedby:caller on wal.Log, the engine-side publish field) must
// describe the code as written, not just reject mutations of it.
func TestProtocolPackagesCleanUnderAllAnalyzers(t *testing.T) {
	all := analysis.All()
	if len(all) != 17 {
		t.Fatalf("analyzer registry has %d entries, want 17", len(all))
	}
	for _, a := range all {
		expectClean(t, a, "repro/internal/wal", "repro/internal/synopsis")
	}
}
