package core

import (
	"strings"
	"testing"
)

// TestPaperTable4Shapes pins the SQL of Table 4: order-axis steps.
func TestPaperTable4Shapes(t *testing.T) {
	tr, _, _ := setup(t)
	// Table 4 (1): //D[@x=4]/following-sibling::E — the paper's schema
	// has D and E under C; our fixture schema likewise.
	trans, err := tr.Translate("//D[@x=4]/following-sibling::E")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"E.dewey_pos > D.dewey_pos",
		"E.par = D.par",
		"D.x = 4",
	} {
		if !strings.Contains(trans.SQL, want) {
			t.Errorf("Table 4(1) SQL missing %q:\n%s", want, trans.SQL)
		}
	}
	// Table 4 (2): //D[@x=4]/preceding::F.
	trans, err = tr.Translate("//D[@x=4]/preceding::F")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trans.SQL, "D.dewey_pos > F.dewey_pos || X'FF'") {
		t.Errorf("Table 4(2) SQL missing preceding condition:\n%s", trans.SQL)
	}
}

// TestPaperTable5Shape1 pins the Table 5(1) structure: a predicate
// path becomes a correlated EXISTS whose regex extends the backbone's
// forward run.
func TestPaperTable5Shape1(t *testing.T) {
	// Disable the Section 4.5 omission so the Table 5(1) regex is
	// visible (with it on, F's unique path makes the filter vanish).
	opts := DefaultOptions()
	opts.PathFilterOmission = false
	tr := New(paperSchema(t), &opts)
	trans, err := tr.Translate("/A/B[C/*/F=2]")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"EXISTS (SELECT NULL FROM F",
		"REGEXP_LIKE(F_paths.path, '^/A/B/C/[^/]+/F$')",
		"F.dewey_pos BETWEEN B.dewey_pos AND B.dewey_pos || X'FF'",
		"F.text = 2",
	} {
		if !strings.Contains(trans.SQL, want) {
			t.Errorf("Table 5(1) SQL missing %q:\n%s", want, trans.SQL)
		}
	}
}

// TestPaperTable6Shape pins the Section 4.4 behaviour: an ambiguous
// path inside a predicate splits the sub-select with OR, never the
// outer statement.
func TestPaperTable6Shape(t *testing.T) {
	tr, _, _ := setup(t)
	trans, err := tr.Translate("/A/B[C/*]")
	if err != nil {
		t.Fatal(err)
	}
	if trans.Selects != 1 {
		t.Fatalf("outer statement split: %d selects", trans.Selects)
	}
	if got := strings.Count(trans.SQL, "EXISTS (SELECT NULL FROM"); got != 2 {
		t.Fatalf("want 2 OR-ed EXISTS branches (D and E), got %d:\n%s", got, trans.SQL)
	}
	if !strings.Contains(trans.SQL, " OR ") {
		t.Fatalf("EXISTS branches not OR-ed:\n%s", trans.SQL)
	}
}

// TestQ2NeedsNoStructuralJoin pins the paper's flagship claim: the
// eight-step Q2 path translates without any structural join.
func TestQ2NeedsNoStructuralJoin(t *testing.T) {
	// Build the XMark schema via the generators' graph.
	tr, _, _ := setup(t)
	_ = tr
	// On the Figure 1 schema, the analogous deep path:
	trans, err := tr.Translate("/A/B/C/E/F")
	if err != nil {
		t.Fatal(err)
	}
	if trans.Joins != 1 {
		t.Errorf("unique-path chain should reference a single relation, got %d:\n%s", trans.Joins, trans.SQL)
	}
	if strings.Contains(trans.SQL, "BETWEEN") || strings.Contains(trans.SQL, "par =") {
		t.Errorf("no structural join expected:\n%s", trans.SQL)
	}
}
