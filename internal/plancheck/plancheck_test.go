package plancheck

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/sqlast"
)

func TestNormalizeRewrites(t *testing.T) {
	cases := []struct{ in, want string }{
		{"b.y = a.x", "a.x = b.y"},
		{"a.x = b.y", "a.x = b.y"},
		{"a.x > 5", "5 < a.x"},
		{"a.x >= 5", "5 <= a.x"},
		{"(a.x = 1 AND b.y = 2) AND a.x = 1", "1 = a.x AND 1 = a.x AND 2 = b.y"},
		{"b.y = 2 OR a.x = 1", "1 = a.x OR 2 = b.y"},
		{"regexp_like(a.path, '#x#')", "REGEXP_LIKE(a.path, '#x#')"},
	}
	for _, c := range cases {
		st, err := sqlast.Parse("SELECT a.x FROM t a WHERE " + c.in)
		if err != nil {
			t.Fatalf("parse %q: %v", c.in, err)
		}
		got := normalize(st.(*sqlast.Select).Where).String()
		if got != c.want {
			t.Errorf("normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// twoTableDB builds a small database with indexes, for direct SQL
// plan checks.
func twoTableDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.NewDB()
	el, err := db.CreateTable("element",
		engine.Column{Name: "id", Type: engine.TInt},
		engine.Column{Name: "parent", Type: engine.TInt},
		engine.Column{Name: "dewey_pos", Type: engine.TBytes},
		engine.Column{Name: "path", Type: engine.TInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		el.MustInsert(engine.NewInt(int64(i)), engine.NewInt(int64(i/4)),
			engine.NewBytes([]byte{byte(i / 16), byte(i % 16)}), engine.NewInt(int64(i%7)))
	}
	if _, err := el.CreateIndex("el_dewey", "dewey_pos"); err != nil {
		t.Fatal(err)
	}
	if _, err := el.CreateIndex("el_parent", "parent"); err != nil {
		t.Fatal(err)
	}
	pt, err := db.CreateTable("paths",
		engine.Column{Name: "id", Type: engine.TInt},
		engine.Column{Name: "path", Type: engine.TText},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		pt.MustInsert(engine.NewInt(int64(i)), engine.NewText("#a#b#"))
	}
	return db
}

func mustCheckSQL(t *testing.T, db *engine.DB, sql string) *Certificate {
	t.Helper()
	st, err := sqlast.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	cert, fs := CheckStatement(db, st)
	for _, f := range fs {
		t.Errorf("unexpected finding for %q:\n%s", sql, f)
	}
	if t.Failed() {
		t.FailNow()
	}
	if cert.NormalHash == "" {
		t.Fatalf("certificate for %q has no normal-form hash", sql)
	}
	return cert
}

func TestCheckDirectSQL(t *testing.T) {
	db := twoTableDB(t)
	queries := []string{
		"SELECT e.id FROM element e",
		"SELECT DISTINCT e.id FROM element e WHERE e.parent = 3 ORDER BY e.dewey_pos",
		"SELECT COUNT(*) FROM element e WHERE e.path = 2",
		"SELECT d.id FROM element e, element d WHERE e.parent = 1 AND d.dewey_pos BETWEEN e.dewey_pos AND e.dewey_pos || X'FF'",
		"SELECT e.id FROM element e WHERE e.dewey_pos BETWEEN X'00' AND X'0A'",
		"SELECT e.id FROM element e WHERE e.dewey_pos > X'01' AND e.dewey_pos <= X'05'",
		"SELECT e.id FROM element e WHERE EXISTS (SELECT c.id FROM element c WHERE c.parent = e.id)",
		"SELECT e.id FROM element e WHERE e.path = (SELECT COUNT(*) FROM paths p WHERE p.id = e.path)",
		"SELECT e.id FROM element e, paths p WHERE e.path = p.id AND REGEXP_LIKE(p.path, '#a#b#')",
		"SELECT e.id AS id FROM element e WHERE e.parent = 1 UNION SELECT e.id AS id FROM element e WHERE e.parent = 2 ORDER BY id",
	}
	for _, q := range queries {
		cert := mustCheckSQL(t, db, q)
		if len(cert.Steps) == 0 {
			t.Errorf("certificate for %q records no steps", q)
		}
	}
}

func TestCertificateRecordsAccessJustification(t *testing.T) {
	db := twoTableDB(t)
	cert := mustCheckSQL(t, db, "SELECT e.id FROM element e WHERE e.parent = 3")
	found := false
	for _, s := range cert.Steps {
		if strings.Contains(s, "justified") {
			found = true
		}
	}
	if !found {
		t.Fatalf("certificate records no access justification:\n%s", strings.Join(cert.Steps, "\n"))
	}
}

func TestCheckerRejectsForeignShape(t *testing.T) {
	// The shape of one statement must not certify a different
	// statement: predicates differ.
	db := twoTableDB(t)
	stA, _ := sqlast.Parse("SELECT e.id FROM element e WHERE e.parent = 3")
	stB, _ := sqlast.Parse("SELECT e.id FROM element e WHERE e.parent = 4")
	sh, err := db.PlanShape(stA)
	if err != nil {
		t.Fatal(err)
	}
	_, fs := CheckShape(db, stB, sh)
	if len(fs) == 0 {
		t.Fatal("checker accepted the plan of a different statement")
	}
}

func TestVerifyPlanExecOption(t *testing.T) {
	db := twoTableDB(t)
	engine.SetPlanVerifier(Verifier(db))
	defer engine.SetPlanVerifier(nil)
	st, err := sqlast.Parse("SELECT DISTINCT e.id FROM element e WHERE e.parent = 3 ORDER BY e.id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.RunWithOptions(st, engine.ExecOptions{VerifyPlan: true}); err != nil {
		t.Fatalf("verified execution failed: %v", err)
	}
}
