package analysis

import (
	"go/ast"
	"go/types"
)

// SyncErr enforces the fsyncgate rule on os.File handles: a failed
// (*os.File).Sync may mean pages reported as written were in fact
// dropped by the kernel, and a failed Close on a writable file may
// lose buffered writes — both errors are part of the durability
// contract and must be propagated, not discarded. The WAL's
// commit path (internal/wal) and the cmd/ tools that write files are
// exactly the places where a swallowed fsync error turns a detectable
// crash into silent data loss.
//
// Flagged:
//
//	defer f.Sync()                    // error lost, any os.File
//	defer f.Close()                   // error lost, writable files only
//	f.Sync()                          // bare call
//	_ = f.Sync()                      // the errdrop opt-out is not
//	_ = f.Close()                     // acceptable for durability errors
//
// Clean:
//
//	if err := f.Sync(); err != nil { ... }
//	return f.Close()
//	defer func() { if cerr := f.Close(); err == nil { err = cerr } }()
//	f, _ := os.Open(path); defer f.Close()   // read-only: no data at risk
//	if err != nil { _ = f.Close(); return nil, err }  // cleanup: an error
//	                                                  // is already returning
//
// A file is considered writable when it is opened in the same file by
// os.Create/os.CreateTemp, or by os.OpenFile with a flag expression
// mentioning O_WRONLY, O_RDWR, O_APPEND, or O_CREATE. Handles of
// unknown origin (fields, parameters) are not flagged for Close;
// Sync has no read-only use, so it is checked unconditionally.
var SyncErr = &Analyzer{
	Name: "syncerr",
	Doc: "flag discarded (*os.File).Sync errors and discarded Close errors on " +
		"writable files (fsyncgate): durability errors must be propagated",
	Run: runSyncErr,
}

func runSyncErr(pass *Pass) error {
	for _, f := range pass.Files {
		writable := writableFiles(pass, f)
		cleanup := cleanupCloses(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.DeferStmt:
				if name, recv := fileSyncOrClose(pass, x.Call); name != "" {
					if name == "Sync" {
						pass.Reportf(x.Pos(), "defer %s.Sync() discards the fsync error: a failed sync may have dropped written pages (fsyncgate); use a named-error defer closure", recv)
					} else if writable[recvObject(pass, x.Call)] {
						pass.Reportf(x.Pos(), "defer %s.Close() on a writable file discards the close error: a failed close can lose buffered writes; use a named-error defer closure", recv)
					}
				}
			case *ast.ExprStmt:
				call, ok := x.X.(*ast.CallExpr)
				if !ok {
					break
				}
				if name, recv := fileSyncOrClose(pass, call); name != "" {
					if name == "Sync" {
						pass.Reportf(x.Pos(), "%s.Sync() error discarded: a failed sync may have dropped written pages (fsyncgate); check and propagate it", recv)
					} else if writable[recvObject(pass, call)] && !cleanup[x] {
						pass.Reportf(x.Pos(), "%s.Close() error on a writable file discarded: a failed close can lose buffered writes; check and propagate it", recv)
					}
				}
			case *ast.AssignStmt:
				// `_ = f.Sync()` / `_ = f.Close()`: the explicit-discard
				// idiom other analyzers honor is still a durability bug.
				if len(x.Lhs) != 1 || len(x.Rhs) != 1 || !isBlank(x.Lhs[0]) {
					break
				}
				call, ok := x.Rhs[0].(*ast.CallExpr)
				if !ok {
					break
				}
				if name, recv := fileSyncOrClose(pass, call); name != "" {
					if name == "Sync" {
						pass.Reportf(x.Pos(), "_ = %s.Sync() blanks a durability error: a failed sync may have dropped written pages (fsyncgate); check and propagate it", recv)
					} else if writable[recvObject(pass, call)] && !cleanup[x] {
						pass.Reportf(x.Pos(), "_ = %s.Close() blanks the close error of a writable file: a failed close can lose buffered writes; check and propagate it", recv)
					}
				}
			}
			return true
		})
	}
	return nil
}

// fileSyncOrClose reports whether call is (*os.File).Sync or
// (*os.File).Close, returning the method name ("" if neither) and a
// rendering of the receiver for diagnostics.
func fileSyncOrClose(pass *Pass, call *ast.CallExpr) (method, recv string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Sync" && sel.Sel.Name != "Close") {
		return "", ""
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", ""
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return "", ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "File" || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "os" {
		return "", ""
	}
	return sel.Sel.Name, exprLabel(sel.X)
}

// recvObject resolves the receiver expression of a method call to its
// variable object, nil for non-identifier receivers.
func recvObject(pass *Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

// writableFiles collects the variables in the file that are opened
// writable: assigned from os.Create/os.CreateTemp, or from os.OpenFile
// whose flag argument mentions a write-mode flag.
func writableFiles(pass *Pass, f *ast.File) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(lhs ast.Expr) {
		if id, ok := lhs.(*ast.Ident); ok && !isBlank(id) {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || pass.importedPkg(sel.X) != "os" {
			return true
		}
		switch sel.Sel.Name {
		case "Create", "CreateTemp":
			mark(as.Lhs[0])
		case "OpenFile":
			if len(call.Args) >= 2 && mentionsWriteFlag(call.Args[1]) {
				mark(as.Lhs[0])
			}
		}
		return true
	})
	return out
}

// cleanupCloses collects the statements immediately followed by a
// return that carries a non-nil error expression: the error-cleanup
// idiom `if err != nil { _ = f.Close(); return nil, err }`, where the
// close error has nowhere to go because an earlier error is already
// being returned. Both the bare-call and blanked forms are collected.
// A plain `return nil` does not exempt — discarding the close there
// is exactly the bug this analyzer exists to catch.
func cleanupCloses(pass *Pass, f *ast.File) map[ast.Stmt]bool {
	out := map[ast.Stmt]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for i := 0; i+1 < len(list); i++ {
			ret, ok := list[i+1].(*ast.ReturnStmt)
			if !ok || !returnsError(pass, ret) {
				continue
			}
			switch list[i].(type) {
			case *ast.ExprStmt, *ast.AssignStmt:
				out[list[i]] = true
			}
		}
		return true
	})
	return out
}

// returnsError reports whether ret returns an error-typed expression
// other than the nil literal.
func returnsError(pass *Pass, ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		if id, ok := r.(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[r]; ok && tv.Type != nil && tv.Type.String() == "error" {
			return true
		}
	}
	return false
}

// mentionsWriteFlag reports whether the flag expression references a
// write-mode os flag constant.
func mentionsWriteFlag(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			switch id.Name {
			case "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC":
				found = true
			}
		}
		return !found
	})
	return found
}

// exprLabel renders a receiver expression for a diagnostic.
func exprLabel(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return id.Name + "." + x.Sel.Name
		}
		return x.Sel.Name
	}
	return "file"
}
