package dewey

import (
	"bytes"
	"testing"
)

// FuzzDeweyDecode feeds arbitrary bytes to every Pos accessor: none
// may panic, whatever the encoding (tuples can carry corrupt blobs).
// For structurally valid encodings the textual round trip must be
// exact: Parse(p.String()) == p.
func FuzzDeweyDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(New(1)))
	f.Add([]byte(New(1, 1, 2)))
	f.Add([]byte(New(0, MaxOrdinal)))
	f.Add([]byte{0x00, 0x00})               // truncated component
	f.Add([]byte{0x80, 0x00, 0x00})         // top bit set
	f.Add([]byte{Sentinel})                 // bare sentinel
	f.Add(append([]byte(New(2)), Sentinel)) // descendant limit form
	f.Fuzz(func(t *testing.T, data []byte) {
		p := Pos(data)
		valid := p.Valid()
		_ = p.String()
		_ = p.Level()
		_ = p.LocalOrder()
		_ = p.DescendantLimit()
		if par, ok := p.Parent(); ok {
			_ = par.String()
		}
		_ = CommonAncestor(p, p)
		_, ordErr := p.Ordinals()
		if len(data)%ComponentSize == 0 && ordErr != nil {
			t.Fatalf("Ordinals() = %v for whole-component encoding %x", ordErr, data)
		}
		if !valid {
			return
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(String()) of valid %x: %v", data, err)
		}
		if !bytes.Equal(q, p) {
			t.Fatalf("round trip of %x: got %x", data, []byte(q))
		}
		if Compare(p, p.DescendantLimit()) >= 0 {
			t.Fatalf("DescendantLimit of %x does not bound it above", data)
		}
	})
}
