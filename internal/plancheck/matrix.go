package plancheck

import (
	"fmt"
	"math/rand"

	"repro/internal/bench"
)

// CheckMatrix certificate-checks a seeded randomized query matrix: n
// generated XPath queries per workload, each translated under both
// the schema-aware and the Edge translator (so the default n of 2500
// yields ~10k checked translations across the two corpus workloads).
// Queries a translator rejects are skipped and counted; every plan
// that compiles must carry a valid certificate.
func CheckMatrix(n int, seed int64) ([]Finding, Stats, error) {
	ws, err := corpusWorkloads()
	if err != nil {
		return nil, Stats{}, err
	}
	var findings []Finding
	var stats Stats
	om := &omissionLog{}
	defer om.install()()
	for _, w := range ws {
		tfs := translators(w)
		gen := newQueryGen(w, rand.New(rand.NewSource(seed)))
		for i := 0; i < n; i++ {
			q := gen.next()
			stats.Queries++
			for _, tf := range tfs {
				label := fmt.Sprintf("%s/matrix[%d]/%s %s", w.Name, i, tf.name, q)
				findings = append(findings, checkOne(label, tf, q, om, &stats)...)
			}
		}
	}
	if stats.Checked == 0 {
		return findings, stats, fmt.Errorf("matrix checked no plans — generator or translators broken")
	}
	return findings, stats, nil
}

// queryGen produces random XPath queries biased toward the shapes the
// translators support: absolute paths over the workload's element
// names with a mix of axes, wildcards, predicates and terminals.
type queryGen struct {
	r     *rand.Rand
	names []string
	attrs []string
}

func newQueryGen(w *bench.Workload, r *rand.Rand) *queryGen {
	g := &queryGen{r: r}
	seen := map[string]bool{}
	for _, n := range w.Schema.Nodes() {
		g.names = append(g.names, n.Name)
		for _, a := range n.Attrs {
			if !seen[a] {
				seen[a] = true
				g.attrs = append(g.attrs, a)
			}
		}
	}
	if len(g.attrs) == 0 {
		g.attrs = []string{"id"}
	}
	return g
}

func (g *queryGen) name() string {
	if g.r.Intn(8) == 0 {
		return "*"
	}
	return g.names[g.r.Intn(len(g.names))]
}

func (g *queryGen) attr() string { return g.attrs[g.r.Intn(len(g.attrs))] }

// axes beyond the child/descendant abbreviations, applied to a
// fraction of non-leading steps.
var matrixAxes = []string{
	"parent::", "ancestor::", "ancestor-or-self::",
	"descendant-or-self::", "following-sibling::",
	"preceding-sibling::", "following::", "preceding::",
}

func (g *queryGen) predicate() string {
	switch g.r.Intn(6) {
	case 0:
		return "[@" + g.attr() + "]"
	case 1:
		return "[@" + g.attr() + "='v" + fmt.Sprint(g.r.Intn(3)) + "']"
	case 2:
		return "[" + g.name() + "]"
	case 3:
		return "[.//" + g.name() + "]"
	case 4:
		return "[not(" + g.name() + ")]"
	default:
		return "[" + g.name() + " and " + g.name() + "]"
	}
}

func (g *queryGen) next() string {
	q := ""
	steps := 1 + g.r.Intn(4)
	for i := 0; i < steps; i++ {
		if g.r.Intn(3) == 0 {
			q += "//"
		} else {
			q += "/"
		}
		step := g.name()
		if i > 0 && g.r.Intn(4) == 0 {
			step = matrixAxes[g.r.Intn(len(matrixAxes))] + step
		}
		if g.r.Intn(4) == 0 {
			step += g.predicate()
		}
		q += step
	}
	switch g.r.Intn(8) {
	case 0:
		q += "/@" + g.attr()
	case 1:
		q += "/text()"
	}
	return q
}
