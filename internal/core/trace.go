package core

import "repro/internal/xpath"

// PatternTrace records one Table 1 regex construction as it happens:
// the inputs (fragment steps, anchoring, boundary name pattern) and
// the pattern the translator derived from them. transcheck subscribes
// to it to verify every emitted pattern against a reference automaton
// built directly from the axis semantics — the trace fires at
// construction time, before path-filter omission (Section 4.5) can
// discard the pattern, so statically omitted filters are still
// checked.
type PatternTrace struct {
	// Kind is the constructing rule: "forward", "backward",
	// "forward-suffix" or "backward-suffix".
	Kind string
	// Steps are the fragment's normalized steps (shared, read-only).
	Steps []*xpath.Step
	// Anchored is the forward rule's root anchoring flag.
	Anchored bool
	// Base is the boundary name pattern: forward's baseName,
	// backward's contextName, the suffix rules' prev/context name.
	Base string
	// Pattern is the derived Table 1 regex.
	Pattern string
}

// patternTrace, when non-nil, observes every Table 1 construction.
var patternTrace func(PatternTrace)

// SetPatternTrace installs (or, with nil, removes) the construction
// observer. Not safe for use concurrently with translation; the only
// intended caller is transcheck's single-threaded corpus sweep.
func SetPatternTrace(fn func(PatternTrace)) { patternTrace = fn }

func tracePattern(kind string, steps []*xpath.Step, anchored bool, base, pattern string) {
	if patternTrace != nil {
		patternTrace(PatternTrace{Kind: kind, Steps: steps, Anchored: anchored, Base: base, Pattern: pattern})
	}
}
