// Package cfg builds intra-procedural control-flow graphs over go/ast
// function bodies and runs the small dataflow analyses (reaching
// definitions, a must-taint lattice) that power the xvet dataflow
// analyzers (ctxflow, lockscope, sqltaint, hotalloc).
//
// The graph is deliberately statement-granular: each basic block holds
// the ast.Stmt nodes (plus loop/branch condition expressions) executed
// straight-line, in order. Function literals are opaque — a FuncLit is
// a value, not control flow, so its body never contributes blocks to
// the enclosing function's graph; clients build a separate graph per
// literal when they care.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Block is a maximal straight-line sequence of nodes. Entry is
// always Blocks[0]; Exit (the target of every return and the fallout
// of the final statement) is always the last block.
type Block struct {
	Index int
	// Nodes holds the statements and control expressions of the block
	// in execution order. Condition expressions of if/for/switch appear
	// as the last node of the block they are evaluated in.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Kind labels synthetic blocks in dumps ("entry", "exit",
	// "for.head", "if.then", ...). Empty for plain blocks.
	Kind string
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Name is a human label ("(*execCtx).workerLoop") used in dumps.
	Name   string
	Blocks []*Block
	Entry  *Block
	Exit   *Block

	stmtBlock map[ast.Node]*Block
	inLoop    map[*Block]bool
}

// New builds the graph for a function body. name labels dumps; body
// may be the Body of a FuncDecl or a FuncLit.
func New(name string, body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{Name: name, stmtBlock: map[ast.Node]*Block{}},
		labels: map[string]*labelInfo{},
	}
	b.g.Entry = b.newBlock("entry")
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.g.Exit = b.newBlock("exit")
	b.edge(b.cur, b.g.Exit)
	for _, from := range b.exitEdges {
		b.edge(from, b.g.Exit)
	}
	for _, pg := range b.pendingGotos {
		if li := b.labels[pg.label]; li != nil && li.target != nil {
			b.edge(pg.from, li.target)
		}
	}
	b.g.prune()
	b.g.markLoops()
	return b.g
}

// BlockOf returns the block containing stmt (a node added during
// construction: a statement or a recorded condition expression), or
// nil for nodes in unreachable code or inside function literals.
func (g *Graph) BlockOf(stmt ast.Node) *Block { return g.stmtBlock[stmt] }

// BlockOfStack returns the innermost enclosing node on the stack
// (outermost first, innermost last) that belongs to a block, together
// with its block. It is how a client positions an arbitrary expression
// node — walk out to the enclosing statement.
func (g *Graph) BlockOfStack(stack []ast.Node) (ast.Node, *Block) {
	for i := len(stack) - 1; i >= 0; i-- {
		if b := g.stmtBlock[stack[i]]; b != nil {
			return stack[i], b
		}
	}
	return nil, nil
}

// InLoop reports whether the block is part of a cycle (a non-trivial
// strongly connected component, or a self loop): statements in such
// blocks execute a data-dependent number of times.
func (g *Graph) InLoop(b *Block) bool { return g.inLoop[b] }

// prune drops blocks unreachable from the entry (dead code after
// return/panic) and renumbers, keeping Exit last.
func (g *Graph) prune() {
	seen := map[*Block]bool{g.Entry: true}
	order := []*Block{}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		order = append(order, b)
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Index < order[j].Index })
	// Exit must survive even if nothing falls out (e.g. infinite loop).
	if !seen[g.Exit] {
		order = append(order, g.Exit)
		seen[g.Exit] = true
	}
	for _, b := range order {
		kept := b.Preds[:0]
		for _, p := range b.Preds {
			if seen[p] {
				kept = append(kept, p)
			}
		}
		b.Preds = kept
	}
	for n, b := range g.stmtBlock {
		if !seen[b] {
			delete(g.stmtBlock, n)
		}
	}
	g.Blocks = order
	// Renumber with Exit forced last.
	for i, b := range g.Blocks {
		if b == g.Exit && i != len(g.Blocks)-1 {
			copy(g.Blocks[i:], g.Blocks[i+1:])
			g.Blocks[len(g.Blocks)-1] = b
			break
		}
	}
	for i, b := range g.Blocks {
		b.Index = i
	}
}

// markLoops finds blocks on cycles via Tarjan's SCC algorithm.
func (g *Graph) markLoops() {
	g.inLoop = map[*Block]bool{}
	index := map[*Block]int{}
	low := map[*Block]int{}
	onStack := map[*Block]bool{}
	var stack []*Block
	next := 0
	var strong func(b *Block)
	strong = func(b *Block) {
		index[b] = next
		low[b] = next
		next++
		stack = append(stack, b)
		onStack[b] = true
		for _, s := range b.Succs {
			if _, ok := index[s]; !ok {
				strong(s)
				if low[s] < low[b] {
					low[b] = low[s]
				}
			} else if onStack[s] && index[s] < low[b] {
				low[b] = index[s]
			}
		}
		if low[b] == index[b] {
			var comp []*Block
			for {
				t := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[t] = false
				comp = append(comp, t)
				if t == b {
					break
				}
			}
			if len(comp) > 1 {
				for _, c := range comp {
					g.inLoop[c] = true
				}
			} else {
				for _, s := range comp[0].Succs {
					if s == comp[0] {
						g.inLoop[comp[0]] = true
					}
				}
			}
		}
	}
	for _, b := range g.Blocks {
		if _, ok := index[b]; !ok {
			strong(b)
		}
	}
}

// Dump renders the graph as stable text for golden tests. describe
// renders one node (typically via the position or a short source
// form); nil uses the node's type name.
func (g *Graph) Dump(describe func(ast.Node) string) string {
	if describe == nil {
		describe = func(n ast.Node) string { return fmt.Sprintf("%T", n) }
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %s\n", g.Name)
	for _, b := range g.Blocks {
		kind := b.Kind
		if kind != "" {
			kind = " (" + kind + ")"
		}
		loop := ""
		if g.InLoop(b) {
			loop = " [loop]"
		}
		fmt.Fprintf(&sb, "b%d%s%s:\n", b.Index, kind, loop)
		for _, n := range b.Nodes {
			fmt.Fprintf(&sb, "\t%s\n", describe(n))
		}
		succs := make([]string, len(b.Succs))
		for i, s := range b.Succs {
			succs[i] = fmt.Sprintf("b%d", s.Index)
		}
		if len(succs) > 0 {
			fmt.Fprintf(&sb, "\t-> %s\n", strings.Join(succs, " "))
		}
	}
	return sb.String()
}

type labelInfo struct {
	target          *Block // block the labeled statement starts in (goto target)
	brk, cont       *Block // break/continue targets for labeled loops/switches
	pendingLabelFor ast.Stmt
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g   *Graph
	cur *Block // nil after a terminator until the next block starts

	// break/continue target stacks; entries without labels are the
	// innermost targets.
	breaks, continues []*Block
	labels            map[string]*labelInfo
	pendingGotos      []pendingGoto
	exitEdges         []*Block
	// pendingLabel is set when a LabeledStmt is being built: the next
	// loop/switch registers it for labeled break/continue.
	pendingLabel *labelInfo
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// start begins a new block reachable from the current one (if any).
func (b *builder) start(kind string) *Block {
	blk := b.newBlock(kind)
	b.edge(b.cur, blk)
	b.cur = blk
	return blk
}

func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		// Unreachable code still gets a block so BlockOf is total over
		// reachable-looking statements; prune discards it.
		b.cur = b.newBlock("dead")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.g.stmtBlock[n] = b.cur
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(x.List)
	case *ast.IfStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		b.add(x.Cond)
		condBlk := b.cur
		b.cur = nil
		thenBlk := b.newBlock("if.then")
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmt(x.Body)
		afterThen := b.cur
		var afterElse *Block
		elseEdgeFrom := condBlk
		if x.Else != nil {
			elseBlk := b.newBlock("if.else")
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(x.Else)
			afterElse = b.cur
			elseEdgeFrom = nil
		}
		join := b.newBlock("if.done")
		b.edge(afterThen, join)
		b.edge(afterElse, join)
		b.edge(elseEdgeFrom, join)
		b.cur = join
	case *ast.ForStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		head := b.start("for.head")
		if x.Cond != nil {
			b.add(x.Cond)
		}
		headEnd := b.cur
		exit := b.newBlock("for.done")
		if x.Cond != nil {
			b.edge(headEnd, exit)
		}
		var post *Block
		contTarget := head
		if x.Post != nil {
			post = b.newBlock("for.post")
			contTarget = post
		}
		body := b.newBlock("for.body")
		b.edge(headEnd, body)
		b.cur = body
		b.pushLoop(exit, contTarget)
		b.stmt(x.Body)
		b.popLoop()
		if post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.add(x.Post)
			b.edge(post, head)
		} else {
			b.edge(b.cur, head)
		}
		b.cur = exit
	case *ast.RangeStmt:
		head := b.start("range.head")
		b.add(x) // the range stmt defines Key/Value each iteration
		exit := b.newBlock("range.done")
		b.edge(head, exit)
		body := b.newBlock("range.body")
		b.edge(head, body)
		b.cur = body
		b.pushLoop(exit, head)
		b.stmt(x.Body)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = exit
	case *ast.SwitchStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		if x.Tag != nil {
			b.add(x.Tag)
		}
		b.switchClauses(x.Body.List, nil)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		b.add(x.Assign)
		b.switchClauses(x.Body.List, nil)
	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.start("select.head")
			head.Kind = "select.head"
		}
		b.cur = nil
		exit := b.newBlock("select.done")
		hasDefault := false
		b.pushBreak(exit)
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock("select.case")
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
			} else {
				hasDefault = true
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, exit)
			b.cur = nil
		}
		b.popBreak()
		_ = hasDefault // select with no default still proceeds via some case
		b.cur = exit
	case *ast.LabeledStmt:
		li := &labelInfo{}
		b.labels[x.Label.Name] = li
		// The labeled statement starts a fresh block so gotos can land.
		target := b.start("label." + x.Label.Name)
		li.target = target
		b.pendingLabel = li
		b.stmt(x.Stmt)
		b.pendingLabel = nil
	case *ast.BranchStmt:
		b.add(x)
		switch x.Tok {
		case token.BREAK:
			b.edge(b.cur, b.branchTarget(x.Label, true))
			b.cur = nil
		case token.CONTINUE:
			b.edge(b.cur, b.branchTarget(x.Label, false))
			b.cur = nil
		case token.GOTO:
			if x.Label != nil {
				b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, label: x.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by switchClauses via fallsThrough detection.
		}
	case *ast.ReturnStmt:
		b.add(x)
		b.exitEdges = append(b.exitEdges, b.cur)
		b.cur = nil
	case *ast.ExprStmt:
		b.add(x)
		if isTerminatingCall(x.X) {
			b.exitEdges = append(b.exitEdges, b.cur)
			b.cur = nil
		}
	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		if _, ok := s.(*ast.EmptyStmt); !ok {
			b.add(s)
		}
	default:
		b.add(s)
	}
}

// switchClauses wires the case clauses of a switch/type switch: every
// clause is entered from the head block, exits to the common done
// block, and fallthrough chains to the next clause's block.
func (b *builder) switchClauses(clauses []ast.Stmt, _ *Block) {
	head := b.cur
	if head == nil {
		head = b.start("switch.head")
	}
	b.cur = nil
	exit := b.newBlock("switch.done")
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock("case")
	}
	b.pushBreak(exit)
	if b.pendingLabel != nil {
		b.pendingLabel.brk = exit
		b.pendingLabel = nil
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, blocks[i])
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		if ft := fallsThrough(cc.Body); ft && i+1 < len(clauses) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, exit)
		}
		b.cur = nil
	}
	b.popBreak()
	if !hasDefault {
		b.edge(head, exit)
	}
	b.cur = exit
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	bs, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && bs.Tok == token.FALLTHROUGH
}

func (b *builder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if b.pendingLabel != nil {
		b.pendingLabel.brk = brk
		b.pendingLabel.cont = cont
		b.pendingLabel = nil
	}
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *builder) pushBreak(brk *Block) { b.breaks = append(b.breaks, brk) }
func (b *builder) popBreak()            { b.breaks = b.breaks[:len(b.breaks)-1] }

func (b *builder) branchTarget(label *ast.Ident, isBreak bool) *Block {
	if label != nil {
		if li := b.labels[label.Name]; li != nil {
			if isBreak {
				return li.brk
			}
			return li.cont
		}
		return nil
	}
	if isBreak {
		if len(b.breaks) == 0 {
			return nil
		}
		return b.breaks[len(b.breaks)-1]
	}
	if len(b.continues) == 0 {
		return nil
	}
	return b.continues[len(b.continues)-1]
}

// isTerminatingCall recognizes calls that never return: the panic
// builtin and os.Exit-shaped selectors (Exit, Fatal, Fatalf, Fatalln).
// Purely syntactic — good enough for block termination; a false
// negative only merges two blocks.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit":
			return true
		}
	}
	return false
}
