// Package repro is a from-scratch Go reproduction of "Improving the
// Efficiency of XPath Execution on Relational Systems" (Georgiadis &
// Vassalos, EDBT 2006).
//
// The public API lives in package repro/xrel; the paper's
// contribution (PPF-based XPath-to-SQL translation) in
// repro/internal/core; the embedded relational engine in
// repro/internal/engine. The benchmarks in this package regenerate
// every table and figure of the paper's evaluation — see DESIGN.md
// for the system inventory and EXPERIMENTS.md for paper-vs-measured
// results.
package repro
