// Package engine implements the in-memory relational engine that
// plays the role of Oracle 10g in the paper's experiments: tables
// with typed columns, B+tree and transient hash indexes, a planner
// that picks join orders and index access paths, and an executor for
// the SQL dialect of package sqlast (joins, BETWEEN range predicates
// over binary strings, REGEXP_LIKE, correlated EXISTS and scalar
// COUNT subqueries, DISTINCT, ORDER BY and UNION).
package engine

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Type is a column type.
type Type uint8

const (
	TInt Type = iota
	TFloat
	TText
	TBytes
)

func (t Type) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TText:
		return "TEXT"
	case TBytes:
		return "BYTES"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Kind is the runtime kind of a Value.
type Kind uint8

const (
	KNull Kind = iota
	KInt
	KFloat
	KText
	KBytes
	KBool
)

// Value is a runtime SQL value. The zero value is NULL.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    []byte
}

// Null is the NULL value.
var Null = Value{}

// NewInt, NewFloat, NewText, NewBytes and NewBool construct values.
func NewInt(v int64) Value     { return Value{Kind: KInt, I: v} }
func NewFloat(v float64) Value { return Value{Kind: KFloat, F: v} }
func NewText(v string) Value   { return Value{Kind: KText, S: v} }
func NewBytes(v []byte) Value  { return Value{Kind: KBytes, B: v} }
func NewBool(v bool) Value {
	if v {
		return Value{Kind: KBool, I: 1}
	}
	return Value{Kind: KBool}
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KNull }

// Truth returns the boolean truth of the value for WHERE filtering.
// NULL is not true (SQL's unknown filters rows out).
func (v Value) Truth() bool {
	switch v.Kind {
	case KBool, KInt:
		return v.I != 0
	case KFloat:
		return v.F != 0
	case KText:
		return v.S != ""
	case KBytes:
		return len(v.B) != 0
	default:
		return false
	}
}

// String renders the value for result output.
func (v Value) String() string {
	switch v.Kind {
	case KNull:
		return "NULL"
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KText:
		return v.S
	case KBytes:
		return fmt.Sprintf("X'%X'", v.B)
	case KBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// Compare compares two values with SQL-style numeric coercion:
// numbers compare numerically (text that parses as a number is
// coerced when compared against a number), text compares
// lexicographically, and byte strings compare lexicographically. The
// second return is false when the values are incomparable or either
// is NULL.
func Compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	// Bytes compare only with bytes.
	if a.Kind == KBytes || b.Kind == KBytes {
		if a.Kind != KBytes || b.Kind != KBytes {
			return 0, false
		}
		return bytes.Compare(a.B, b.B), true
	}
	// Pure text-to-text compares lexicographically.
	if a.Kind == KText && b.Kind == KText {
		return strings.Compare(a.S, b.S), true
	}
	// Otherwise numeric comparison with coercion.
	af, aok := a.numeric()
	bf, bok := b.numeric()
	if !aok || !bok {
		return 0, false
	}
	switch {
	case af < bf:
		return -1, true
	case af > bf:
		return 1, true
	}
	return 0, true
}

// numeric coerces the value to float64 if possible.
func (v Value) numeric() (float64, bool) {
	switch v.Kind {
	case KInt, KBool:
		return float64(v.I), true
	case KFloat:
		return v.F, true
	case KText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// Equal reports SQL equality under the same coercion as Compare.
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Concat implements the || operator on text and byte strings. A text
// operand concatenated with bytes is converted to its raw bytes.
func Concat(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if a.Kind == KBytes || b.Kind == KBytes {
		ab, ok1 := a.rawBytes()
		bb, ok2 := b.rawBytes()
		if !ok1 || !ok2 {
			return Null, fmt.Errorf("engine: cannot concatenate %s and %s", a.Kind, b.Kind)
		}
		out := make([]byte, 0, len(ab)+len(bb))
		out = append(out, ab...)
		out = append(out, bb...)
		return NewBytes(out), nil
	}
	return NewText(a.String() + b.String()), nil
}

func (v Value) rawBytes() ([]byte, bool) {
	switch v.Kind {
	case KBytes:
		return v.B, true
	case KText:
		return []byte(v.S), true
	default:
		return nil, false
	}
}

func (k Kind) String() string {
	switch k {
	case KNull:
		return "NULL"
	case KInt:
		return "INT"
	case KFloat:
		return "FLOAT"
	case KText:
		return "TEXT"
	case KBytes:
		return "BYTES"
	case KBool:
		return "BOOL"
	}
	return "?"
}

// Arith applies an arithmetic operator with numeric coercion.
func Arith(op byte, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	// Integer fast path for +,-,* and exact division.
	if a.Kind == KInt && b.Kind == KInt {
		switch op {
		case '+':
			return NewInt(a.I + b.I), nil
		case '-':
			return NewInt(a.I - b.I), nil
		case '*':
			return NewInt(a.I * b.I), nil
		case '%':
			if b.I == 0 {
				return Null, fmt.Errorf("engine: modulo by zero")
			}
			return NewInt(a.I % b.I), nil
		case '/':
			if b.I == 0 {
				return Null, fmt.Errorf("engine: division by zero")
			}
			if a.I%b.I == 0 {
				return NewInt(a.I / b.I), nil
			}
		}
	}
	af, aok := a.numeric()
	bf, bok := b.numeric()
	if !aok || !bok {
		return Null, fmt.Errorf("engine: non-numeric operand for arithmetic (%s, %s)", a.Kind, b.Kind)
	}
	switch op {
	case '+':
		return NewFloat(af + bf), nil
	case '-':
		return NewFloat(af - bf), nil
	case '*':
		return NewFloat(af * bf), nil
	case '/':
		if bf == 0 {
			return Null, fmt.Errorf("engine: division by zero")
		}
		return NewFloat(af / bf), nil
	case '%':
		if bf == 0 {
			return Null, fmt.Errorf("engine: modulo by zero")
		}
		return NewFloat(float64(int64(af) % int64(bf))), nil
	}
	return Null, fmt.Errorf("engine: unknown arithmetic operator %q", op)
}
