// Package analysistest runs an analyzer over a testdata source tree
// and checks its diagnostics against golden expectations written as
// `// want "regexp"` comments, mirroring the x/tools package of the
// same name.
//
// Layout: <testdata>/src/<importpath>/*.go. A want comment applies to
// the line it appears on and may carry several quoted or backquoted
// regular expressions; each must match exactly one diagnostic
// reported on that line, and every diagnostic must be matched.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each package and applies the analyzer, reporting
// mismatches between diagnostics and want comments as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader.AddSrcDir(filepath.Join(testdata, "src"))
	for _, pkgPath := range pkgs {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
		pkg, err := loader.LoadDir(dir, pkgPath)
		if err != nil {
			t.Fatalf("analysistest: load %s: %v", pkgPath, err)
		}
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("analysistest: run %s on %s: %v", a.Name, pkgPath, err)
		}
		checkDiagnostics(t, pkg, diags)
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func checkDiagnostics(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		w := findWant(wants, pos.Filename, pos.Line, d.Message)
		if w == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		w.matched = true
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func findWant(wants []*want, file string, line int, msg string) *want {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parseWantPatterns(m[1])
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pos, err)
				}
				for _, p := range patterns {
					wants = append(wants, &want{
						file: pos.Filename,
						line: pos.Line,
						re:   compileWant(t, pos.String(), p),
					})
				}
			}
		}
	}
	return wants
}

// compileWant compiles one want pattern, failing the test with the
// comment's position on a bad regexp. (Each distinct pattern is
// compiled exactly once; keeping the call out of the scan loop also
// keeps the harness itself clean under the regexploop analyzer.)
func compileWant(t *testing.T, pos, pattern string) *regexp.Regexp {
	t.Helper()
	re, err := regexp.Compile(pattern)
	if err != nil {
		t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
	}
	return re
}

// parseWantPatterns scans a sequence of Go string literals:
// `re` or "re", separated by spaces.
func parseWantPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			lit = s[1 : 1+end]
			s = s[end+2:]
		case '"':
			// Find the closing quote, honoring escapes.
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			var err error
			lit, err = strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			s = s[end+1:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted, got %q", s)
		}
		out = append(out, lit)
		s = strings.TrimSpace(s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
