// Sanctioned context idioms that ctxflow must not flag.
package engine

import (
	"context"
	"time"
)

// Threading the parameter straight through is the normal case.
func threads(ctx context.Context, s store, q string) error {
	return s.queryContext(ctx, q)
}

// Deriving preserves the caller's cancellation signal.
func derives(ctx context.Context, s store, q string) error {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return s.queryContext(c, q)
}

// Rebinding to a derivation on one branch still carries ctx.
func derivesOnBranch(ctx context.Context, slow bool, s store, q string) error {
	c := ctx
	if slow {
		var cancel context.CancelFunc
		c, cancel = context.WithTimeout(ctx, time.Minute)
		defer cancel()
	}
	return s.queryContext(c, q)
}

// A blank parameter declares the drop; adapters satisfying an
// interface shape they don't need are exempt.
func declaredDrop(_ context.Context, s store, q string) error {
	return s.queryContext(nil, q)
}

// Reading the deadline counts as use even with no ctx-accepting
// callee.
func deadlineOnly(ctx context.Context) bool {
	_, ok := ctx.Deadline()
	return ok
}
