// Package synopsis maintains per-table, per-column statistics used by
// the cost-based planner: row counts, null counts, exact min/max for
// numeric columns, value-length sketches, and a capped exact
// value-frequency histogram with a linear-counting distinct sketch for
// columns whose cardinality exceeds the cap.
//
// A Table is immutable once sealed. The engine's copy-on-write table
// states each carry one: a write clones the accumulator (Extend),
// observes the new rows, and seals the successor, so a synopsis is
// always exactly consistent with the snapshot that carries it —
// including across WAL recovery and checkpoint reload, which replay
// inserts through the same observe path as live writes.
//
// The per-path statistics of the paper's shredded stores fall out of
// the generic machinery: the node table's path_id column histogram is
// the per-path node count, parent→child fanout for paths p→c is
// N(c)/N(p) over that histogram, and distinct-value counts per column
// drive equality selectivity (see DESIGN.md §13).
package synopsis

import (
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
)

// HistCap bounds the exact value-frequency histogram per column. Past
// the cap, new values stop being added to the histogram (existing keys
// keep counting) and a linear-counting bitmap takes over distinct
// estimation. Shredded-store key columns (path_id over the paths
// relation) stay far below the cap, so path statistics are exact.
const HistCap = 1024

// sketchWords sizes the linear-counting bitmap: 128 words = 8192 bits,
// good to a few percent up to ~20k distinct values per column.
const sketchWords = 128

// seed is the shared maphash seed; it only needs to be stable within a
// process, because sketches are rebuilt (not persisted) on recovery.
var seed = maphash.MakeSeed()

// colStats accumulates one column's statistics. All fields are
// unexported: mutation happens only through Builder observe methods,
// reads only through the Col accessor methods (the statflow analyzer
// additionally rejects any field write outside this package).
type colStats struct {
	count int64 // observations, including NULLs
	nulls int64

	hasInt         bool
	intMin, intMax int64

	hasFloat           bool
	floatMin, floatMax float64

	lenSum int64 // text/bytes lengths
	lenMax int64

	// hist maps encoded values to exact counts for the first ≤ HistCap
	// distinct values; other counts observations whose value is absent
	// from hist (only nonzero after overflow).
	hist  map[string]int64
	other int64
	// sketch is the linear-counting bitmap, allocated on overflow.
	sketch []uint64
}

// clone deep-copies the accumulator for a copy-on-write successor.
func (c *colStats) clone() *colStats {
	n := *c
	n.hist = make(map[string]int64, len(c.hist))
	for k, v := range c.hist {
		n.hist[k] = v
	}
	if c.sketch != nil {
		n.sketch = append([]uint64(nil), c.sketch...)
	}
	return &n
}

// observe folds one non-NULL encoded value into the histogram and, if
// overflowed, the distinct sketch.
func (c *colStats) observe(key []byte) {
	c.count++
	if n, ok := c.hist[string(key)]; ok {
		c.hist[string(key)] = n + 1
		if c.sketch != nil {
			c.mark(key)
		}
		return
	}
	if len(c.hist) < HistCap {
		if c.hist == nil {
			c.hist = make(map[string]int64)
		}
		c.hist[string(key)] = 1
		if c.sketch != nil {
			c.mark(key)
		}
		return
	}
	if c.sketch == nil {
		// Overflow: seed the sketch with every value seen so far, then
		// stop admitting new histogram keys.
		c.sketch = make([]uint64, sketchWords)
		for k := range c.hist {
			c.mark([]byte(k))
		}
	}
	c.mark(key)
	c.other++
}

// mark sets the value's bit in the linear-counting bitmap.
func (c *colStats) mark(key []byte) {
	h := maphash.Bytes(seed, key)
	bit := h % (sketchWords * 64)
	c.sketch[bit/64] |= 1 << (bit % 64)
}

// distinct estimates the number of distinct non-NULL values: exact
// while the histogram holds every value, linear counting afterwards.
func (c *colStats) distinct() int64 {
	if c.sketch == nil {
		return int64(len(c.hist))
	}
	m := float64(sketchWords * 64)
	ones := 0
	for _, w := range c.sketch {
		ones += popcount(w)
	}
	empty := m - float64(ones)
	if empty < 1 {
		empty = 1
	}
	est := int64(math.Round(m * math.Log(m/empty)))
	if min := int64(len(c.hist)); est < min {
		est = min
	}
	return est
}

func popcount(w uint64) int {
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}

// Value key encoding: one tag byte plus a canonical payload. Ints and
// bools share a tag so engine KBool/KInt unify the way table storage
// does; floats that hold integral values stay distinct from ints.
const (
	tagInt   = 'i'
	tagFloat = 'f'
	tagText  = 't'
	tagBytes = 'b'
)

func keyInt(dst []byte, v int64) []byte {
	dst = append(dst, tagInt)
	return binary.BigEndian.AppendUint64(dst, uint64(v))
}

func keyFloat(dst []byte, v float64) []byte {
	dst = append(dst, tagFloat)
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

func keyText(dst []byte, v string) []byte {
	dst = append(dst, tagText)
	return append(dst, v...)
}

func keyBytes(dst []byte, v []byte) []byte {
	dst = append(dst, tagBytes)
	return append(dst, v...)
}

// Table is an immutable, sealed synopsis: per-column statistics plus
// the total row count. The zero value (or Empty()) describes an empty
// table.
type Table struct {
	rows int64
	cols []*colStats
}

// Empty returns the synopsis of an empty table.
func Empty() *Table { return &Table{} }

// Rows returns the number of rows observed.
func (t *Table) Rows() int64 {
	if t == nil {
		return 0
	}
	return t.rows
}

// NumCols returns how many columns have been observed.
func (t *Table) NumCols() int {
	if t == nil {
		return 0
	}
	return len(t.cols)
}

// Col returns the accessor for column i; it is valid (and reports
// zeros) for columns never observed.
func (t *Table) Col(i int) Col {
	if t == nil || i < 0 || i >= len(t.cols) {
		return Col{}
	}
	return Col{c: t.cols[i]}
}

// Col is a read-only view of one column's statistics.
type Col struct{ c *colStats }

// Count returns the number of observations (including NULLs).
func (c Col) Count() int64 {
	if c.c == nil {
		return 0
	}
	return c.c.count + c.c.nulls
}

// Nulls returns the number of NULL observations.
func (c Col) Nulls() int64 {
	if c.c == nil {
		return 0
	}
	return c.c.nulls
}

// Distinct estimates the number of distinct non-NULL values.
func (c Col) Distinct() int64 {
	if c.c == nil {
		return 0
	}
	return c.c.distinct()
}

// Exact reports whether the histogram still holds every distinct value
// (equality and range counts are then exact, not estimates).
func (c Col) Exact() bool { return c.c != nil && c.c.sketch == nil }

// IntRange returns the exact min/max over integer observations; ok is
// false if no integers were observed.
func (c Col) IntRange() (min, max int64, ok bool) {
	if c.c == nil || !c.c.hasInt {
		return 0, 0, false
	}
	return c.c.intMin, c.c.intMax, true
}

// FloatRange returns the exact min/max over float observations.
func (c Col) FloatRange() (min, max float64, ok bool) {
	if c.c == nil || !c.c.hasFloat {
		return 0, 0, false
	}
	return c.c.floatMin, c.c.floatMax, true
}

// AvgLen returns the mean text/bytes length observed, or 0.
func (c Col) AvgLen() float64 {
	if c.c == nil || c.c.count == 0 {
		return 0
	}
	return float64(c.c.lenSum) / float64(c.c.count)
}

// MaxLen returns the largest text/bytes length observed.
func (c Col) MaxLen() int64 {
	if c.c == nil {
		return 0
	}
	return c.c.lenMax
}

// eq returns the estimated number of rows equal to the encoded key.
// exact reports whether the count came straight from the histogram.
func (c Col) eq(key []byte) (n int64, exact bool) {
	if c.c == nil {
		return 0, false
	}
	if n, ok := c.c.hist[string(key)]; ok {
		return n, c.c.sketch == nil
	}
	if c.c.sketch == nil {
		// Histogram is complete and the value is absent.
		return 0, true
	}
	// Value fell past the cap: spread the overflow mass uniformly over
	// the distinct values outside the histogram.
	outside := c.c.distinct() - int64(len(c.c.hist))
	if outside < 1 {
		outside = 1
	}
	n = c.c.other / outside
	if n < 1 {
		n = 1
	}
	return n, false
}

// EqInt estimates rows where the column equals v (ints and bools).
func (c Col) EqInt(v int64) (int64, bool) { return c.eq(keyInt(nil, v)) }

// EqFloat estimates rows where the column equals v.
func (c Col) EqFloat(v float64) (int64, bool) { return c.eq(keyFloat(nil, v)) }

// EqText estimates rows where the column equals v.
func (c Col) EqText(v string) (int64, bool) { return c.eq(keyText(nil, v)) }

// EqBytes estimates rows where the column equals v.
func (c Col) EqBytes(v []byte) (int64, bool) { return c.eq(keyBytes(nil, v)) }

// IntRangeCount estimates rows with lo ≤ value ≤ hi over integer
// observations. While the histogram is exact the count is a histogram
// sum; afterwards it interpolates uniformly over [min,max].
func (c Col) IntRangeCount(lo, hi int64) (int64, bool) {
	if c.c == nil || !c.c.hasInt || lo > hi {
		return 0, c.c != nil && c.c.sketch == nil
	}
	if c.c.sketch == nil {
		var n int64
		var buf [9]byte
		for v := range c.c.hist {
			if len(v) == 9 && v[0] == tagInt {
				copy(buf[:], v)
				iv := int64(binary.BigEndian.Uint64(buf[1:]))
				if iv >= lo && iv <= hi {
					n += c.c.hist[v]
				}
			}
		}
		return n, true
	}
	span := float64(c.c.intMax-c.c.intMin) + 1
	clo, chi := lo, hi
	if clo < c.c.intMin {
		clo = c.c.intMin
	}
	if chi > c.c.intMax {
		chi = c.c.intMax
	}
	if clo > chi {
		return 0, false
	}
	frac := (float64(chi-clo) + 1) / span
	return int64(frac * float64(c.c.count)), false
}

// MaxFreq returns the largest exact histogram bucket — the planner's
// worst-case rows-per-probe for an equality join on this column.
func (c Col) MaxFreq() int64 {
	if c.c == nil {
		return 0
	}
	var max int64
	for _, n := range c.c.hist {
		if n > max {
			max = n
		}
	}
	// Overflow mass could hide a heavier value; be conservative.
	if c.c.other > 0 {
		outside := c.c.distinct() - int64(len(c.c.hist))
		if outside < 1 {
			outside = 1
		}
		if avg := c.c.other / outside; avg > max {
			max = avg
		}
	}
	return max
}

// String summarizes the synopsis for diagnostics.
func (t *Table) String() string {
	if t == nil {
		return "synopsis(nil)"
	}
	s := fmt.Sprintf("synopsis(rows=%d", t.rows)
	for i := range t.cols {
		c := t.Col(i)
		s += fmt.Sprintf(" c%d[n=%d null=%d d=%d exact=%v]",
			i, c.Count(), c.Nulls(), c.Distinct(), c.Exact())
	}
	return s + ")"
}

// Builder accumulates observations for a successor synopsis. Obtain
// one with Extend, observe every inserted row's values in column
// order, and Seal it into the successor table state. A Builder must
// not be used after Seal, and is not safe for concurrent use (the
// engine's writer is serialized).
type Builder struct {
	rows   int64
	cols   []*colStats
	sealed bool
	buf    []byte
}

// Extend clones prev (which may be nil or Empty) into a Builder. The
// clone is deep for histogram state, so readers of the predecessor
// snapshot are never disturbed.
func Extend(prev *Table) *Builder {
	b := &Builder{}
	if prev != nil {
		b.rows = prev.rows
		b.cols = make([]*colStats, len(prev.cols))
		for i, c := range prev.cols {
			b.cols[i] = c.clone()
		}
	}
	return b
}

// col grows the column vector on demand (loaders discover width from
// the first row).
func (b *Builder) col(i int) *colStats {
	for len(b.cols) <= i {
		b.cols = append(b.cols, &colStats{})
	}
	return b.cols[i]
}

// Row marks one complete row observed. Call once per inserted row,
// after observing its values.
func (b *Builder) Row() { b.rows++ }

// Null records a NULL in column i.
func (b *Builder) Null(i int) { b.col(i).nulls++ }

// Int records an integer (or boolean) value in column i.
func (b *Builder) Int(i int, v int64) {
	c := b.col(i)
	if !c.hasInt || v < c.intMin {
		c.intMin = v
	}
	if !c.hasInt || v > c.intMax {
		c.intMax = v
	}
	c.hasInt = true
	b.buf = keyInt(b.buf[:0], v)
	c.observe(b.buf)
}

// Float records a float value in column i.
func (b *Builder) Float(i int, v float64) {
	c := b.col(i)
	if !c.hasFloat || v < c.floatMin {
		c.floatMin = v
	}
	if !c.hasFloat || v > c.floatMax {
		c.floatMax = v
	}
	c.hasFloat = true
	b.buf = keyFloat(b.buf[:0], v)
	c.observe(b.buf)
}

// Text records a text value in column i.
func (b *Builder) Text(i int, v string) {
	c := b.col(i)
	c.lenSum += int64(len(v))
	if int64(len(v)) > c.lenMax {
		c.lenMax = int64(len(v))
	}
	b.buf = keyText(b.buf[:0], v)
	c.observe(b.buf)
}

// Bytes records a bytes value in column i.
func (b *Builder) Bytes(i int, v []byte) {
	c := b.col(i)
	c.lenSum += int64(len(v))
	if int64(len(v)) > c.lenMax {
		c.lenMax = int64(len(v))
	}
	b.buf = keyBytes(b.buf[:0], v)
	c.observe(b.buf)
}

// Seal freezes the Builder into an immutable Table. The Builder must
// not be reused.
func (b *Builder) Seal() *Table {
	if b.sealed {
		panic("synopsis: Builder sealed twice")
	}
	b.sealed = true
	return &Table{rows: b.rows, cols: b.cols}
}

// Equal reports whether two synopses agree on every statistic — used
// by durability tests to compare a recovered synopsis against a
// from-scratch rebuild.
func Equal(a, b *Table) bool {
	if a.Rows() != b.Rows() || a.NumCols() != b.NumCols() {
		return false
	}
	for i := 0; i < a.NumCols(); i++ {
		ca, cb := a.cols[i], b.cols[i]
		if ca.count != cb.count || ca.nulls != cb.nulls ||
			ca.hasInt != cb.hasInt || ca.intMin != cb.intMin || ca.intMax != cb.intMax ||
			ca.hasFloat != cb.hasFloat ||
			(ca.hasFloat && (ca.floatMin != cb.floatMin || ca.floatMax != cb.floatMax)) ||
			ca.lenSum != cb.lenSum || ca.lenMax != cb.lenMax ||
			ca.other != cb.other || len(ca.hist) != len(cb.hist) {
			return false
		}
		for k, v := range ca.hist {
			if cb.hist[k] != v {
				return false
			}
		}
	}
	return true
}

// DebugDistinct is a test hook: the true distinct count fed through a
// builder versus its estimate, as a q-error string.
func DebugDistinct(truth int64, c Col) string {
	est := c.Distinct()
	q := qerr(float64(truth), float64(est))
	return "distinct truth=" + strconv.FormatInt(truth, 10) +
		" est=" + strconv.FormatInt(est, 10) +
		" q=" + strconv.FormatFloat(q, 'f', 2, 64)
}

func qerr(a, b float64) float64 {
	if a < 1 {
		a = 1
	}
	if b < 1 {
		b = 1
	}
	if a > b {
		return a / b
	}
	return b / a
}
