package sqlast

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a SELECT or UNION statement in the engine dialect.
// Keywords are case-insensitive; identifiers are case-sensitive.
func Parse(src string) (Statement, error) {
	p, err := newSQLParser(src)
	if err != nil {
		return nil, err
	}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != sqlEOF {
		return nil, fmt.Errorf("sqlast: unexpected %q after statement", p.peek().text)
	}
	return st, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) Statement {
	st, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return st
}

type sqlTokenKind uint8

const (
	sqlEOF sqlTokenKind = iota
	sqlIdent
	sqlKeyword
	sqlNumber
	sqlString
	sqlBytes
	sqlOp
	sqlLParen
	sqlRParen
	sqlComma
	sqlDot
	sqlStar
)

type sqlToken struct {
	kind sqlTokenKind
	text string // keywords are upper-cased
	pos  int
}

var sqlKeywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "AND": true,
	"OR": true, "NOT": true, "BETWEEN": true, "IS": true, "NULL": true,
	"EXISTS": true, "UNION": true, "AS": true, "COUNT": true,
}

func lexSQL(src string) ([]sqlToken, error) {
	var toks []sqlToken
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, sqlToken{sqlLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, sqlToken{sqlRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, sqlToken{sqlComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, sqlToken{sqlDot, ".", i})
			i++
		case c == '*':
			toks = append(toks, sqlToken{sqlStar, "*", i})
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(src) {
					return nil, fmt.Errorf("sqlast: unterminated string at offset %d", i)
				}
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, sqlToken{sqlString, sb.String(), i})
			i = j + 1
		case (c == 'X' || c == 'x') && i+1 < len(src) && src[i+1] == '\'':
			j := i + 2
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("sqlast: unterminated hex literal at offset %d", i)
			}
			toks = append(toks, sqlToken{sqlBytes, src[i+2 : j], i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, sqlToken{sqlNumber, src[i:j], i})
			i = j
		case isSQLIdentStart(c):
			j := i
			for j < len(src) && isSQLIdentChar(src[j]) {
				j++
			}
			word := src[i:j]
			if up := strings.ToUpper(word); sqlKeywords[up] {
				toks = append(toks, sqlToken{sqlKeyword, up, i})
			} else {
				toks = append(toks, sqlToken{sqlIdent, word, i})
			}
			i = j
		default:
			for _, op := range []string{"||", "<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "/", "%"} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, sqlToken{sqlOp, op, i})
					i += len(op)
					goto next
				}
			}
			return nil, fmt.Errorf("sqlast: unexpected character %q at offset %d", c, i)
		next:
		}
	}
	toks = append(toks, sqlToken{sqlEOF, "", len(src)})
	return toks, nil
}

func isSQLIdentStart(c byte) bool {
	return c == '_' || c == '@' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isSQLIdentChar(c byte) bool {
	return isSQLIdentStart(c) || (c >= '0' && c <= '9')
}

type sqlParser struct {
	toks []sqlToken
	pos  int
}

func newSQLParser(src string) (*sqlParser, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	return &sqlParser{toks: toks}, nil
}

func (p *sqlParser) peek() sqlToken { return p.toks[p.pos] }
func (p *sqlParser) next() sqlToken { t := p.toks[p.pos]; p.pos++; return t }

func (p *sqlParser) accept(kind sqlTokenKind, text string) bool {
	t := p.peek()
	if t.kind == kind && (text == "" || t.text == text) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expect(kind sqlTokenKind, text, what string) error {
	if !p.accept(kind, text) {
		return fmt.Errorf("sqlast: expected %s, found %q at offset %d", what, p.peek().text, p.peek().pos)
	}
	return nil
}

func (p *sqlParser) parseStatement() (Statement, error) {
	// DDL, INSERT and EXPLAIN lead with identifiers (not reserved
	// keywords, so they stay usable as table/column names).
	if t := p.peek(); t.kind == sqlIdent {
		switch strings.ToUpper(t.text) {
		case "CREATE":
			p.next()
			return p.parseCreate()
		case "INSERT":
			p.next()
			return p.parseInsert()
		case "EXPLAIN":
			p.next()
			ex := &Explain{}
			if a := p.peek(); a.kind == sqlIdent && strings.ToUpper(a.text) == "ANALYZE" {
				p.next()
				ex.Analyze = true
			}
			inner, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			if _, nested := inner.(*Explain); nested {
				return nil, fmt.Errorf("sqlast: EXPLAIN cannot be nested")
			}
			ex.Stmt = inner
			return ex, nil
		}
	}
	first, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != sqlKeyword || p.peek().text != "UNION" {
		first.OrderBy, err = p.parseOrderBy()
		if err != nil {
			return nil, err
		}
		return first, nil
	}
	u := &Union{Selects: []*Select{first}}
	for p.accept(sqlKeyword, "UNION") {
		s, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		u.Selects = append(u.Selects, s)
	}
	u.OrderBy, err = p.parseOrderBy()
	if err != nil {
		return nil, err
	}
	return u, nil
}

func (p *sqlParser) parseOrderBy() ([]OrderKey, error) {
	if !p.accept(sqlKeyword, "ORDER") {
		return nil, nil
	}
	if err := p.expect(sqlKeyword, "BY", "BY"); err != nil {
		return nil, err
	}
	var keys []OrderKey
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		k := OrderKey{Expr: e}
		if p.accept(sqlKeyword, "DESC") {
			k.Desc = true
		} else {
			p.accept(sqlKeyword, "ASC")
		}
		keys = append(keys, k)
		if !p.accept(sqlComma, "") {
			return keys, nil
		}
	}
}

func (p *sqlParser) parseSelect() (*Select, error) {
	if err := p.expect(sqlKeyword, "SELECT", "SELECT"); err != nil {
		return nil, err
	}
	s := &Select{}
	s.Distinct = p.accept(sqlKeyword, "DISTINCT")
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		col := SelectCol{Expr: e}
		if p.accept(sqlKeyword, "AS") {
			t := p.next()
			if t.kind != sqlIdent {
				return nil, fmt.Errorf("sqlast: expected alias after AS, found %q", t.text)
			}
			col.Alias = t.text
		}
		s.Cols = append(s.Cols, col)
		if !p.accept(sqlComma, "") {
			break
		}
	}
	if err := p.expect(sqlKeyword, "FROM", "FROM"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != sqlIdent {
			return nil, fmt.Errorf("sqlast: expected table name, found %q", t.text)
		}
		ref := TableRef{Table: t.text}
		if p.peek().kind == sqlIdent {
			ref.Alias = p.next().text
		}
		s.From = append(s.From, ref)
		if !p.accept(sqlComma, "") {
			break
		}
	}
	if p.accept(sqlKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

// Expression grammar, lowest to highest precedence:
// or > and > not > comparison/between/isnull > additive > multiplicative > concat > primary
func (p *sqlParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *sqlParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(sqlKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(sqlKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseNot() (Expr, error) {
	if p.peek().kind == sqlKeyword && p.peek().text == "NOT" {
		// NOT EXISTS is handled in parseComparison via primary; check.
		if p.toks[p.pos+1].kind == sqlKeyword && p.toks[p.pos+1].text == "EXISTS" {
			return p.parseComparison()
		}
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	return p.parseComparison()
}

func (p *sqlParser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// BETWEEN / IS NULL postfix forms.
	if p.accept(sqlKeyword, "BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expect(sqlKeyword, "AND", "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{X: l, Lo: lo, Hi: hi}, nil
	}
	if p.accept(sqlKeyword, "IS") {
		neg := p.accept(sqlKeyword, "NOT")
		if err := p.expect(sqlKeyword, "NULL", "NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Negate: neg}, nil
	}
	ops := map[string]BinOp{"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe}
	if t := p.peek(); t.kind == sqlOp {
		if op, ok := ops[t.text]; ok {
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *sqlParser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != sqlOp || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		op := OpAdd
		if t.text == "-" {
			op = OpSub
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *sqlParser) parseMultiplicative() (Expr, error) {
	l, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op BinOp
		switch {
		case t.kind == sqlStar:
			op = OpMul
		case t.kind == sqlOp && t.text == "/":
			op = OpDiv
		case t.kind == sqlOp && t.text == "%":
			op = OpMod
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *sqlParser) parseConcat() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == sqlOp && p.peek().text == "||" {
		p.next()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpConcat, L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case sqlNumber:
		if strings.Contains(t.text, ".") {
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlast: bad number %q", t.text)
			}
			return &FloatLit{Value: v}, nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlast: bad number %q", t.text)
		}
		return &IntLit{Value: v}, nil
	case sqlString:
		return &StrLit{Value: t.text}, nil
	case sqlBytes:
		b, err := hex.DecodeString(t.text)
		if err != nil {
			return nil, fmt.Errorf("sqlast: bad hex literal %q", t.text)
		}
		return &BytesLit{Value: b}, nil
	case sqlLParen:
		// Subquery or parenthesized expression.
		if p.peek().kind == sqlKeyword && p.peek().text == "SELECT" {
			s, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expect(sqlRParen, "", "')'"); err != nil {
				return nil, err
			}
			return &Subquery{Select: s}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(sqlRParen, "", "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case sqlKeyword:
		switch t.text {
		case "NULL":
			return &NullLit{}, nil
		case "COUNT":
			if err := p.expect(sqlLParen, "", "'('"); err != nil {
				return nil, err
			}
			if err := p.expect(sqlStar, "", "'*'"); err != nil {
				return nil, err
			}
			if err := p.expect(sqlRParen, "", "')'"); err != nil {
				return nil, err
			}
			return &CountStar{}, nil
		case "EXISTS", "NOT":
			neg := false
			if t.text == "NOT" {
				neg = true
				if err := p.expect(sqlKeyword, "EXISTS", "EXISTS"); err != nil {
					return nil, err
				}
			}
			if err := p.expect(sqlLParen, "", "'('"); err != nil {
				return nil, err
			}
			s, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expect(sqlRParen, "", "')'"); err != nil {
				return nil, err
			}
			return &Exists{Select: s, Negate: neg}, nil
		}
		return nil, fmt.Errorf("sqlast: unexpected keyword %q at offset %d", t.text, t.pos)
	case sqlOp:
		if t.text == "-" {
			inner, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			switch l := inner.(type) {
			case *IntLit:
				return &IntLit{Value: -l.Value}, nil
			case *FloatLit:
				return &FloatLit{Value: -l.Value}, nil
			}
			return &Binary{Op: OpSub, L: &IntLit{Value: 0}, R: inner}, nil
		}
		return nil, fmt.Errorf("sqlast: unexpected operator %q at offset %d", t.text, t.pos)
	case sqlIdent:
		// Function call?
		if p.peek().kind == sqlLParen {
			p.next()
			f := &Func{Name: strings.ToUpper(t.text)}
			if p.peek().kind != sqlRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					f.Args = append(f.Args, a)
					if !p.accept(sqlComma, "") {
						break
					}
				}
			}
			if err := p.expect(sqlRParen, "", "')'"); err != nil {
				return nil, err
			}
			return f, nil
		}
		// Qualified or bare column.
		if p.accept(sqlDot, "") {
			c := p.next()
			if c.kind != sqlIdent {
				return nil, fmt.Errorf("sqlast: expected column after '.', found %q", c.text)
			}
			return &Col{Table: t.text, Column: c.text}, nil
		}
		return &Col{Column: t.text}, nil
	default:
		return nil, fmt.Errorf("sqlast: unexpected %q at offset %d", t.text, t.pos)
	}
}
