// Seeded violations for the errdrop analyzer: discarded error
// returns.
package a

import "errors"

func fail() error { return errors.New("boom") }

func load() (int, error) { return 0, errors.New("boom") }

func bareCall() {
	fail() // want `fail returns an error that is discarded`
}

func blankedInTuple() int {
	v, _ := load() // want `error result of load blanked while other results are kept`
	return v
}

type closer struct{}

func (closer) Close() error { return nil }

func methodCall(c closer) {
	c.Close() // want `c.Close returns an error that is discarded`
}

func detached() {
	go fail() // want `go fail discards the callee's error result`
}
