package schema

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/xmltree"
)

// ParseCompact parses the compact schema DSL used by tools and tests.
// Each non-empty, non-comment line declares one element:
//
//	name -> child1 child2 ...   children
//	name @a @b                  attributes
//	name #text                  character data
//	!root name                  document element
//
// Clauses can be combined: "item -> name payment @id @featured".
// Lines starting with '#' are comments.
func ParseCompact(src string) (*Schema, error) {
	type decl struct {
		children []string
		attrs    []string
		hasText  bool
	}
	decls := map[string]*decl{}
	var order, roots []string
	for lineNo, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "!root"); ok {
			for _, r := range strings.Fields(rest) {
				roots = append(roots, r)
			}
			continue
		}
		fields := strings.Fields(strings.ReplaceAll(line, "->", " -> "))
		if len(fields) == 0 {
			continue
		}
		name := fields[0]
		if name == "->" {
			return nil, fmt.Errorf("schema: line %d: missing element name", lineNo+1)
		}
		d := decls[name]
		if d == nil {
			d = &decl{}
			decls[name] = d
			order = append(order, name)
		}
		inChildren := false
		for _, f := range fields[1:] {
			switch {
			case f == "->":
				inChildren = true
			case strings.HasPrefix(f, "@"):
				d.attrs = append(d.attrs, f[1:])
			case f == "#text":
				d.hasText = true
			case inChildren:
				d.children = append(d.children, f)
			default:
				return nil, fmt.Errorf("schema: line %d: unexpected token %q (children need '->')", lineNo+1, f)
			}
		}
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("schema: compact source declares no '!root'")
	}
	b := NewBuilder(roots...)
	// Register declared elements in line order first, so the graph's
	// declaration order matches the source (and WriteCompact output
	// round-trips exactly).
	for _, name := range order {
		b.Element(name)
	}
	for _, name := range order {
		d := decls[name]
		b.Element(name, d.children...)
		b.Attrs(name, d.attrs...)
		if d.hasText {
			b.Text(name)
		}
	}
	return b.Build()
}

// Infer derives a schema graph from one or more sample documents: an
// edge for every observed parent/child element pair, attributes and
// text content as observed. It backs the schema-oblivious workflow
// and tests.
func Infer(docs ...*xmltree.Document) (*Schema, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("schema: Infer needs at least one document")
	}
	rootSet := map[string]bool{}
	var roots []string
	for _, d := range docs {
		if !rootSet[d.Root.Name] {
			rootSet[d.Root.Name] = true
			roots = append(roots, d.Root.Name)
		}
	}
	b := NewBuilder(roots...)
	for _, d := range docs {
		for _, n := range d.Nodes() {
			if n.Kind != xmltree.Element {
				continue
			}
			b.Element(n.Name)
			for _, a := range n.Attrs {
				b.Attrs(n.Name, a.Name)
			}
			for _, c := range n.Children {
				if c.Kind == xmltree.Element {
					b.Element(n.Name, c.Name)
				} else {
					b.Text(n.Name)
				}
			}
		}
	}
	return b.Build()
}

// ParseXSD parses the subset of W3C XML Schema sufficient for the
// schemata in this repository: top-level xs:element declarations with
// inline or named complex types, xs:sequence / xs:choice / xs:all
// groups (arbitrarily nested), xs:attribute declarations, element
// references (ref=), type references (type=), and mixed="true" or
// simple-typed elements for text content. Namespace prefixes on XSD
// elements are ignored; the first top-level element is the document
// element unless more are declared.
func ParseXSD(r io.Reader) (*Schema, error) {
	var doc xsdSchema
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("schema: parse XSD: %w", err)
	}
	if len(doc.Elements) == 0 {
		return nil, fmt.Errorf("schema: XSD declares no top-level elements")
	}
	types := map[string]*xsdComplexType{}
	for i := range doc.ComplexTypes {
		ct := &doc.ComplexTypes[i]
		types[ct.Name] = ct
	}
	topElems := map[string]*xsdElement{}
	var rootNames []string
	for i := range doc.Elements {
		e := &doc.Elements[i]
		topElems[e.Name] = e
		rootNames = append(rootNames, e.Name)
	}
	b := NewBuilder(rootNames...)
	// expand walks an element declaration, registering its children.
	seen := map[string]bool{}
	var expand func(e *xsdElement) error
	expandType := func(name string, ct *xsdComplexType) error {
		if ct.Mixed == "true" {
			b.Text(name)
		}
		for _, a := range ct.Attributes {
			b.Attrs(name, a.Name)
		}
		var errOut error
		ct.eachElement(func(child *xsdElement) {
			childName := child.Name
			if child.Ref != "" {
				childName = stripPrefix(child.Ref)
			}
			if childName == "" {
				errOut = fmt.Errorf("schema: element under %q has neither name nor ref", name)
				return
			}
			b.Element(name, childName)
			if child.Ref != "" {
				if top, ok := topElems[childName]; ok {
					if !seen[childName] {
						seen[childName] = true
						if err := expand(top); err != nil && errOut == nil {
							errOut = err
						}
					}
				}
				return
			}
			if err := expand(child); err != nil && errOut == nil {
				errOut = err
			}
		})
		return errOut
	}
	expand = func(e *xsdElement) error {
		b.Element(e.Name)
		switch {
		case e.Complex != nil:
			return expandType(e.Name, e.Complex)
		case e.Type != "":
			tn := stripPrefix(e.Type)
			if ct, ok := types[tn]; ok {
				if seen["type:"+tn+":"+e.Name] {
					return nil
				}
				seen["type:"+tn+":"+e.Name] = true
				return expandType(e.Name, ct)
			}
			// Simple type (xs:string etc.): text content.
			b.Text(e.Name)
		default:
			// No type: empty element.
		}
		return nil
	}
	for _, rn := range rootNames {
		seen[rn] = true
		if err := expand(topElems[rn]); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

func stripPrefix(s string) string {
	if i := strings.LastIndexByte(s, ':'); i >= 0 {
		return s[i+1:]
	}
	return s
}

type xsdSchema struct {
	XMLName      xml.Name         `xml:"schema"`
	Elements     []xsdElement     `xml:"element"`
	ComplexTypes []xsdComplexType `xml:"complexType"`
}

type xsdElement struct {
	Name    string          `xml:"name,attr"`
	Ref     string          `xml:"ref,attr"`
	Type    string          `xml:"type,attr"`
	Complex *xsdComplexType `xml:"complexType"`
}

type xsdComplexType struct {
	Name       string         `xml:"name,attr"`
	Mixed      string         `xml:"mixed,attr"`
	Sequence   []xsdGroup     `xml:"sequence"`
	Choice     []xsdGroup     `xml:"choice"`
	All        []xsdGroup     `xml:"all"`
	Attributes []xsdAttribute `xml:"attribute"`
}

type xsdGroup struct {
	Elements []xsdElement `xml:"element"`
	Sequence []xsdGroup   `xml:"sequence"`
	Choice   []xsdGroup   `xml:"choice"`
}

type xsdAttribute struct {
	Name string `xml:"name,attr"`
}

// eachElement visits every element declaration nested anywhere under
// the type's content model.
func (ct *xsdComplexType) eachElement(fn func(*xsdElement)) {
	var walkGroups func(gs []xsdGroup)
	walkGroups = func(gs []xsdGroup) {
		for i := range gs {
			g := &gs[i]
			for j := range g.Elements {
				fn(&g.Elements[j])
			}
			walkGroups(g.Sequence)
			walkGroups(g.Choice)
		}
	}
	walkGroups(ct.Sequence)
	walkGroups(ct.Choice)
	walkGroups(ct.All)
}

// Validate checks a document against the schema graph: every element
// name must be declared, every parent/child nesting must correspond
// to an edge, attributes must be declared, and text content must be
// allowed. It returns the first violation found, or nil.
func (s *Schema) Validate(doc *xmltree.Document) error {
	rootNode := s.Node(doc.Root.Name)
	if rootNode == nil || !rootNode.IsRoot {
		return fmt.Errorf("schema: %q is not a declared document element", doc.Root.Name)
	}
	for _, n := range doc.Nodes() {
		if n.Kind != xmltree.Element {
			continue
		}
		sn := s.Node(n.Name)
		if sn == nil {
			return fmt.Errorf("schema: undeclared element %q at %s", n.Name, n.Path)
		}
		for _, a := range n.Attrs {
			if !sn.HasAttr(a.Name) {
				return fmt.Errorf("schema: undeclared attribute %q on %q", a.Name, n.Name)
			}
		}
		for _, c := range n.Children {
			if c.Kind == xmltree.Text {
				if !sn.HasText {
					return fmt.Errorf("schema: element %q does not allow text content", n.Name)
				}
				continue
			}
			cn := s.Node(c.Name)
			if cn == nil || !containsNode(sn.Children, cn) {
				return fmt.Errorf("schema: element %q may not nest under %q", c.Name, n.Name)
			}
		}
	}
	return nil
}

// WriteCompact renders the schema in the compact DSL accepted by
// ParseCompact; ParseCompact(WriteCompact(s)) reproduces the graph.
func (s *Schema) WriteCompact() string {
	var b strings.Builder
	b.WriteString("!root")
	for _, r := range s.roots {
		b.WriteByte(' ')
		b.WriteString(r.Name)
	}
	b.WriteByte('\n')
	for _, n := range s.nodes {
		b.WriteString(n.Name)
		if len(n.Children) > 0 {
			b.WriteString(" ->")
			for _, c := range n.Children {
				b.WriteByte(' ')
				b.WriteString(c.Name)
			}
		}
		for _, a := range n.Attrs {
			b.WriteString(" @")
			b.WriteString(a)
		}
		if n.HasText {
			b.WriteString(" #text")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedNames returns all element names, sorted, for stable output.
func (s *Schema) SortedNames() []string {
	out := make([]string, len(s.nodes))
	for i, n := range s.nodes {
		out[i] = n.Name
	}
	sort.Strings(out)
	return out
}
