package engine

import (
	"fmt"
	"testing"
)

// q6Rows synthesizes ORDER BY key vectors shaped like Q6's
// DISTINCT+ORDER BY output (a text column plus an integer id), the
// workload the memcomparable sort path targets.
func q6Rows(n int) []orderedRow {
	rows := make([]orderedRow, n)
	rnd := uint64(0x9E3779B97F4A7C15)
	for i := range rows {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		text := NewText(fmt.Sprintf("item-%05d", rnd%5000))
		id := NewInt(int64(rnd % 100000))
		rows[i] = orderedRow{row: []Value{text, id}, keys: []Value{text, id}}
	}
	return rows
}

// BenchmarkSortRowsEncoded measures the memcomparable-key sort used
// when key kinds are uniform: one encode pass, then bytes.Compare.
func BenchmarkSortRowsEncoded(b *testing.B) {
	src := q6Rows(4096)
	desc := []bool{false, true}
	work := make([]orderedRow, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		sortRows(work, desc)
	}
}

// BenchmarkSortRowsGeneric measures the fallback value-by-value
// comparison sort on the same rows (the pre-change behavior).
func BenchmarkSortRowsGeneric(b *testing.B) {
	src := q6Rows(4096)
	desc := []bool{false, true}
	work := make([]orderedRow, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		sortRowsGeneric(work, desc)
	}
}

// BenchmarkDistinctOrderByQuery runs a whole Q6-shaped
// DISTINCT+ORDER BY query end to end (dedup via rowKey plus the sort)
// against the multi-morsel synthetic database.
func BenchmarkDistinctOrderByQuery(b *testing.B) {
	db := bigDB(b)
	p, err := db.Prepare("SELECT DISTINCT i.text, i.path_id FROM item i ORDER BY i.text, i.path_id")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
