// Seeded violations for the ctxflow analyzer. Regression note: the
// shape in background() is the exact bug fixed in xrel.Query — it
// called s.QueryContext(context.Background(), q), defeating the
// engine's nil-context fast path while enabling no cancellation; the
// fix passes nil. The dataflow rules below catch the subtler forms:
// a ctx parameter that is accepted but never forwarded, or forwarded
// only on some paths.
package engine

import "context"

type store struct{}

func (store) queryContext(_ context.Context, q string) error { return nil }

// Rule 1: Background/TODO are banned in engine scope outright.
func background(s store, q string) error {
	ctx := context.Background() // want `context.Background\(\) defeats the engine's nil-context fast path`
	return s.queryContext(ctx, q)
}

// No ctx parameter here, so only rule 1 fires (rule 2 guards
// functions that declare a context of their own).
func todo(s store, q string) error {
	return s.queryContext(context.TODO(), q) // want `context.TODO\(\) defeats the engine's nil-context fast path`
}

// Rule 2: the declared ctx must reach every ctx-accepting callee.
func swapped(ctx context.Context, detached context.Context, s store, q string) error {
	_ = ctx.Err()
	return s.queryContext(detached, q) // want `context argument does not carry the function's ctx parameter ctx`
}

// Rule 2, path-sensitivity: rebinding on one branch loses the
// caller's deadline on the other.
func somePaths(ctx context.Context, detached context.Context, retry bool, s store, q string) error {
	c := ctx
	if retry {
		c = detached
	}
	return s.queryContext(c, q) // want `context argument carries ctx only on some paths`
}

// Rule 3: a named ctx parameter that no callee receives is a dropped
// context; rename it _ to declare the drop.
func dropped(ctx context.Context, s store, q string) error { // want `context parameter ctx is dropped`
	return s.queryContext(nil, q)
}
