package plancheck

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlast"
)

// The mutation harness proves the checker is not vacuous: each
// mutation simulates a distinct planner or lowering defect by
// corrupting a freshly extracted plan shape (or forging an omission
// trace), and the checker must reject every one with a
// counterexample.

// Mutation is one seeded defect. Apply corrupts the shape in place
// and reports whether the defect was applicable to this plan.
type Mutation struct {
	Name   string
	Defect string // the planner bug the mutation simulates
	Apply  func(*engine.StmtShape) bool
}

// MutationResult records one mutation run.
type MutationResult struct {
	Name     string
	Applied  bool
	Rejected bool
	// Finding is the first counterexample the checker produced.
	Finding string
}

// firstSelect returns the shape's select block (first union branch
// for unions).
func firstSelect(sh *engine.StmtShape) *engine.SelectShape {
	if sh.Select != nil {
		return sh.Select
	}
	if sh.Union != nil && len(sh.Union.Branches) > 0 {
		return sh.Union.Branches[0]
	}
	return nil
}

// Mutations returns the seeded defects, each distinct in the rule it
// must trip.
func Mutations() []Mutation {
	return []Mutation{
		{
			Name:   "swap-join-bounds",
			Defect: "bad Table 2 join condition: BETWEEN bounds swapped",
			Apply: func(sh *engine.StmtShape) bool {
				sel := firstSelect(sh)
				if sel == nil {
					return false
				}
				for si := range sel.Steps {
					for fi, f := range sel.Steps[si].Filters {
						if b, ok := f.Expr.(*sqlast.Between); ok {
							sel.Steps[si].Filters[fi].Expr = &sqlast.Between{X: b.X, Lo: b.Hi, Hi: b.Lo}
							return true
						}
					}
				}
				return false
			},
		},
		{
			Name:   "drop-predicate",
			Defect: "planner silently drops a WHERE conjunct",
			Apply: func(sh *engine.StmtShape) bool {
				sel := firstSelect(sh)
				if sel == nil {
					return false
				}
				for si := range sel.Steps {
					fs := sel.Steps[si].Filters
					if len(fs) > 0 {
						sel.Steps[si].Filters = fs[:len(fs)-1]
						return true
					}
				}
				if len(sel.PreFilters) > 0 {
					sel.PreFilters = sel.PreFilters[:len(sel.PreFilters)-1]
					return true
				}
				return false
			},
		},
		{
			Name:   "wrong-access-path",
			Defect: "access path not justified by any predicate or index",
			Apply: func(sh *engine.StmtShape) bool {
				sel := firstSelect(sh)
				if sel == nil || len(sel.Steps) == 0 {
					return false
				}
				s := &sel.Steps[len(sel.Steps)-1]
				s.Access = engine.AccessShape{
					Kind:      "index-eq",
					Index:     "phantom_idx",
					IndexCols: []string{"no_such_col"},
					Col:       "no_such_col",
					Keys:      []engine.ExprShape{{Expr: sqlast.Int(42)}},
				}
				return true
			},
		},
		{
			Name:   "misplace-distinct",
			Defect: "DISTINCT dropped from (or invented in) the lowered pipeline",
			Apply: func(sh *engine.StmtShape) bool {
				sel := firstSelect(sh)
				if sel == nil {
					return false
				}
				for i, tok := range sel.Pipeline {
					if tok == "distinct" {
						sel.Pipeline = append(sel.Pipeline[:i], sel.Pipeline[i+1:]...)
						return true
					}
				}
				sel.Pipeline = append(sel.Pipeline, "distinct")
				return true
			},
		},
		{
			Name:   "forge-est-source",
			Defect: "planner reports a cardinality estimate with unknown provenance",
			Apply: func(sh *engine.StmtShape) bool {
				sel := firstSelect(sh)
				if sel == nil || len(sel.Steps) == 0 {
					return false
				}
				sel.Steps[0].EstSource = "hunch"
				return true
			},
		},
		{
			Name:   "smuggle-filter-as-omission",
			Defect: "planner drops a live filter claiming a synopsis proof with fabricated evidence",
			Apply: func(sh *engine.StmtShape) bool {
				sel := firstSelect(sh)
				if sel == nil {
					return false
				}
				// Prefer a step that keeps another filter so the
				// conjunct multiset and pipeline stay balanced and only
				// the omission re-proof can catch the forgery.
				best := -1
				for si := range sel.Steps {
					if n := len(sel.Steps[si].Filters); n >= 2 || (n == 1 && best < 0) {
						best = si
						if n >= 2 {
							break
						}
					}
				}
				if best < 0 {
					return false
				}
				s := &sel.Steps[best]
				last := len(s.Filters) - 1
				s.Omitted = append(s.Omitted, engine.OmittedShape{
					Pred:   s.Filters[last],
					Reason: "not-null",
					Rows:   1 << 60, // fabricated: no synopsis counts this many rows
				})
				s.Filters = s.Filters[:last]
				return true
			},
		},
		{
			Name:   "corrupt-omission-evidence",
			Defect: "omission evidence disagrees with the synopsis it cites",
			Apply: func(sh *engine.StmtShape) bool {
				sel := firstSelect(sh)
				if sel == nil {
					return false
				}
				for si := range sel.Steps {
					if len(sel.Steps[si].Omitted) > 0 {
						sel.Steps[si].Omitted[0].Rows++
						return true
					}
				}
				return false
			},
		},
		{
			Name:   "reorder-binding",
			Defect: "join order binds a table after an expression that reads it",
			Apply: func(sh *engine.StmtShape) bool {
				sel := firstSelect(sh)
				if sel == nil {
					return false
				}
				// Swap a referencing step in front of the step it
				// reads, so its access keys or filters run before the
				// alias is bound.
				for j := range sel.Steps {
					for i := 0; i < j; i++ {
						if stepReferences(sel.Steps[j], sel.Steps[i].Alias) {
							sel.Steps[i], sel.Steps[j] = sel.Steps[j], sel.Steps[i]
							pi, pj := pipelinePos(sel.Pipeline, sel.Steps[j].Alias), pipelinePos(sel.Pipeline, sel.Steps[i].Alias)
							if pi >= 0 && pj >= 0 {
								sel.Pipeline[pi], sel.Pipeline[pj] = sel.Pipeline[pj], sel.Pipeline[pi]
							}
							return true
						}
					}
				}
				return false
			},
		},
	}
}

func stepReferences(s engine.StepShape, alias string) bool {
	for _, es := range accessExprs(s.Access) {
		for _, r := range es.Refs {
			if r == alias {
				return true
			}
		}
	}
	for _, f := range s.Filters {
		for _, r := range f.Refs {
			if r == alias {
				return true
			}
		}
	}
	return false
}

func pipelinePos(pipeline []string, alias string) int {
	for i, tok := range pipeline {
		if tok == "scan "+alias {
			return i
		}
	}
	return -1
}

// CheckMutations extracts st's plan shape once per mutation, applies
// the defect, and runs the checker. A sound checker rejects every
// applied mutation.
func CheckMutations(db *engine.DB, st sqlast.Statement) ([]MutationResult, error) {
	var out []MutationResult
	for _, m := range Mutations() {
		sh, err := db.PlanShape(st)
		if err != nil {
			return nil, fmt.Errorf("extract shape for %s: %w", m.Name, err)
		}
		res := MutationResult{Name: m.Name}
		if !m.Apply(sh) {
			out = append(out, res)
			continue
		}
		res.Applied = true
		_, fs := CheckShape(db, st, sh)
		if len(fs) > 0 {
			res.Rejected = true
			res.Finding = fs[0].String()
		}
		out = append(out, res)
	}
	return out, nil
}

// OmissionMutations forges Section 4.5 traces with unjustified
// decisions against s; the validator must reject each.
func OmissionMutations(s *schema.Schema) []MutationResult {
	var ipNode, fpNode *schema.Node
	for _, n := range s.Nodes() {
		switch n.Mark {
		case schema.InfinitePaths:
			if ipNode == nil {
				ipNode = n
			}
		case schema.FinitePaths, schema.UniquePath:
			if fpNode == nil && len(n.RootPaths) > 0 {
				fpNode = n
			}
		}
	}
	var out []MutationResult
	run := func(name string, tr core.OmissionTrace, applicable bool) {
		res := MutationResult{Name: name, Applied: applicable}
		if applicable {
			if f := ValidateOmission(tr); f != nil {
				res.Rejected = true
				res.Finding = f.String()
			}
		}
		out = append(out, res)
	}
	run("omit-on-infinite-paths", core.OmissionTrace{
		Node:     ipNode,
		Pattern:  "#.*#",
		Decision: schema.OmitFilter,
	}, ipNode != nil)
	if fpNode != nil {
		// A pattern matching no root path: omission would admit every
		// row the filter should reject.
		run("omit-without-full-match", core.OmissionTrace{
			Node:     fpNode,
			Pattern:  "#never-a-root-path#",
			Decision: schema.OmitFilter,
			Evidence: schema.OmissionEvidence{Mark: fpNode.Mark, Total: len(fpNode.RootPaths)},
		}, true)
		// Claiming emptiness while every root path matches.
		run("empty-despite-matches", core.OmissionTrace{
			Node:     fpNode,
			Pattern:  ".*",
			Decision: schema.EmptyResult,
			Evidence: schema.OmissionEvidence{Mark: fpNode.Mark, Total: len(fpNode.RootPaths), Matched: len(fpNode.RootPaths)},
		}, true)
	} else {
		run("omit-without-full-match", core.OmissionTrace{}, false)
		run("empty-despite-matches", core.OmissionTrace{}, false)
	}
	return out
}
