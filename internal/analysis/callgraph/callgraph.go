// Package callgraph builds a per-package call graph for the xvet
// analyzers: a CHA-style (class-hierarchy analysis) approximation with
// static call edges, interface dispatch resolved against the method
// sets of the package's declared types, and function literals tracked
// as first-class nodes. It layers on the same vocabulary as the cfg
// package — pure go/ast + go/types, no loader dependency — so the
// interprocedural analyzers (snapfreeze, guardedby, walorder) can
// compose graphs of the package under analysis with graphs of its
// already-type-checked module-internal dependencies.
//
// The graph is deliberately package-local: cross-package calls are
// recorded as Extern sites (with their *types.Func identity) rather
// than edges, and clients stitch packages together through function
// summaries (FreshReturns, the analyzers' own mutator/durability
// summaries). That keeps each package's graph a pure function of its
// own sources plus dependency types, which is exactly the invalidation
// unit of the .xvetcache/ result cache.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EdgeKind classifies how a call site reaches its callee.
type EdgeKind int

const (
	// Static: direct call of a declared function, a method on a
	// concrete receiver, or an immediately invoked function literal
	// (including `go lit()` / `defer lit()`).
	Static EdgeKind = iota
	// Interface: dynamic dispatch through an interface method,
	// resolved CHA-style to every declared type of the package whose
	// method set implements the interface.
	Interface
	// FuncValue: call through a func-typed variable or field, resolved
	// by signature against the package's function literals (named
	// functions reached through values are covered by their Escape
	// edges; matching them by bare signature would invent edges the
	// protocol analyzers then have to disprove).
	FuncValue
	// Escape: not a call — the site where a function literal or a
	// method/function value escapes the enclosing function (stored,
	// passed as an argument, returned). The callee may run later, on
	// any goroutine, with no lock context inherited from the site.
	Escape
)

func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "iface"
	case FuncValue:
		return "funcval"
	case Escape:
		return "escape"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// A Node is one function of the package: a declared function or
// method (Obj != nil) or a function literal (Lit != nil), named
// "parent$N" in source order within its parent.
type Node struct {
	Name string
	Obj  *types.Func   // nil for literals
	Lit  *ast.FuncLit  // nil for declared functions
	Decl *ast.FuncDecl // nil for literals
	Body *ast.BlockStmt
	// Parent is the lexically enclosing function of a literal (nil for
	// declared functions).
	Parent *Node

	Out    []*Edge      // calls made by this function, in source order
	In     []*Edge      // call sites reaching this function
	Extern []ExternCall // calls leaving the package, in source order

	litSeq int // per-parent literal counter
}

// An Edge is one intra-package call (or escape) site.
type Edge struct {
	Caller *Node
	Callee *Node
	Kind   EdgeKind
	// Site is the *ast.CallExpr for calls, the *ast.FuncLit or value
	// expression for escapes.
	Site ast.Node
}

// An ExternCall is a call site whose callee is statically known but
// declared outside the package (stdlib or another module package).
type ExternCall struct {
	Callee *types.Func
	Site   *ast.CallExpr
}

// A Graph is the call graph of one package.
type Graph struct {
	Path  string
	Fset  *token.FileSet
	Pkg   *types.Package
	Info  *types.Info
	Nodes []*Node // declared functions sorted by name, then literals

	byObj map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
}

// NodeOf returns the node of a declared function or method, or nil.
func (g *Graph) NodeOf(obj *types.Func) *Node { return g.byObj[obj] }

// LitNode returns the node of a function literal, or nil.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Named returns the node with the given display name ("commitState",
// "(*Table).Insert", "Open$1"), or nil.
func (g *Graph) Named(name string) *Node {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Build constructs the call graph of one type-checked package.
func Build(path string, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Graph {
	g := &Graph{
		Path:  path,
		Fset:  fset,
		Pkg:   pkg,
		Info:  info,
		byObj: map[*types.Func]*Node{},
		byLit: map[*ast.FuncLit]*Node{},
	}
	b := &gbuilder{g: g}

	// Pass 1: one node per declared function with a body, so forward
	// references resolve while walking bodies.
	var decls []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Name: FuncName(obj), Obj: obj, Decl: fd, Body: fd.Body}
			g.byObj[obj] = n
			g.Nodes = append(g.Nodes, n)
			decls = append(decls, fd)
		}
	}
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].Name < g.Nodes[j].Name })
	sort.Slice(decls, func(i, j int) bool {
		return FuncName(info.Defs[decls[i].Name].(*types.Func)) < FuncName(info.Defs[decls[j].Name].(*types.Func))
	})

	// Pass 2: walk bodies; literal nodes are created (and appended
	// after the named nodes) as they are encountered.
	for _, fd := range decls {
		owner := g.byObj[info.Defs[fd.Name].(*types.Func)]
		b.walkBody(owner, fd.Body)
	}

	// FuncValue dispatch needs the full literal population, so it runs
	// after every body has been walked.
	b.resolveFuncValues()
	return g
}

// FuncName renders a declared function for node names and summaries:
// "f" for functions, "(T).m" / "(*T).m" for methods.
func FuncName(obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if p, okp := t.(*types.Pointer); okp {
			t = p.Elem()
			star = "*"
		}
		if named, okn := t.(*types.Named); okn {
			return "(" + star + named.Obj().Name() + ")." + obj.Name()
		}
	}
	return obj.Name()
}

type funcValueSite struct {
	owner *Node
	call  *ast.CallExpr
	sig   *types.Signature
}

type gbuilder struct {
	g        *Graph
	fvSites  []funcValueSite
	litCount map[*Node]int
}

func (b *gbuilder) edge(caller, callee *Node, kind EdgeKind, site ast.Node) {
	e := &Edge{Caller: caller, Callee: callee, Kind: kind, Site: site}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// walkBody attributes every call, escape, and nested literal inside
// body to owner. Literal bodies are walked recursively under their own
// nodes, so a call inside a closure belongs to the closure, not to the
// declaring function.
func (b *gbuilder) walkBody(owner *Node, body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			child := b.litNode(owner, x)
			kind := Escape
			if ce, ok := parentCall(stack); ok && ast.Unparen(ce.Fun) == ast.Expr(x) {
				kind = Static // immediately invoked (incl. go/defer)
			}
			b.edge(owner, child, kind, x)
			b.walkBody(child, x.Body)
			return false // child owns everything inside
		case *ast.CallExpr:
			b.call(owner, x)
		case *ast.Ident:
			b.identRef(owner, x, stack)
		}
		stack = append(stack, n)
		return true
	})
}

// litNode creates the node for a function literal, named after its
// lexical parent ("Open$1", "Open$1$1" for a literal inside a literal).
func (b *gbuilder) litNode(owner *Node, lit *ast.FuncLit) *Node {
	if b.litCount == nil {
		b.litCount = map[*Node]int{}
	}
	b.litCount[owner]++
	n := &Node{
		Name:   fmt.Sprintf("%s$%d", owner.Name, b.litCount[owner]),
		Lit:    lit,
		Body:   lit.Body,
		Parent: owner,
		litSeq: b.litCount[owner],
	}
	b.g.byLit[lit] = n
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

// parentCall returns the innermost enclosing CallExpr on the stack, if
// the node being visited hangs directly under it.
func parentCall(stack []ast.Node) (*ast.CallExpr, bool) {
	if len(stack) == 0 {
		return nil, false
	}
	ce, ok := stack[len(stack)-1].(*ast.CallExpr)
	return ce, ok
}

// call classifies one call site and records the matching edges.
func (b *gbuilder) call(owner *Node, call *ast.CallExpr) {
	info := b.g.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		// Edge recorded when the literal itself is visited.
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			b.static(owner, obj, call)
		case *types.Var:
			// Call through a func-typed variable: resolved against the
			// package's literals once all bodies are walked.
			if sig, ok := obj.Type().Underlying().(*types.Signature); ok {
				b.fvSites = append(b.fvSites, funcValueSite{owner, call, sig})
			}
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[fun]
		if !ok {
			// Package-qualified function (pkg.F) or conversion.
			if obj, okf := info.Uses[fun.Sel].(*types.Func); okf {
				b.static(owner, obj, call)
			}
			return
		}
		switch sel.Kind() {
		case types.MethodVal:
			m, okm := sel.Obj().(*types.Func)
			if !okm {
				return
			}
			if types.IsInterface(sel.Recv()) {
				b.interfaceDispatch(owner, sel.Recv(), m, call)
				return
			}
			b.static(owner, m, call)
		case types.MethodExpr:
			if m, okm := sel.Obj().(*types.Func); okm {
				b.static(owner, m, call)
			}
		case types.FieldVal:
			if sig, oks := sel.Type().Underlying().(*types.Signature); oks {
				b.fvSites = append(b.fvSites, funcValueSite{owner, call, sig})
			}
		}
	}
}

// static records a direct call: an intra-package edge when the callee
// is declared here with a body, an ExternCall otherwise.
func (b *gbuilder) static(owner *Node, callee *types.Func, call *ast.CallExpr) {
	if n := b.g.byObj[callee]; n != nil {
		b.edge(owner, n, Static, call)
		return
	}
	owner.Extern = append(owner.Extern, ExternCall{Callee: callee, Site: call})
}

// interfaceDispatch resolves an interface method call CHA-style: every
// named type declared in this package whose method set (value or
// pointer) implements the interface contributes its implementation as
// an Interface edge. Implementations living in other packages are out
// of scope by construction (clients see the call as unresolved and
// must treat it conservatively).
func (b *gbuilder) interfaceDispatch(owner *Node, recv types.Type, m *types.Func, call *ast.CallExpr) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	scope := b.g.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, okn := scope.Lookup(name).(*types.TypeName)
		if !okn || tn.IsAlias() {
			continue
		}
		named, okn2 := tn.Type().(*types.Named)
		if !okn2 || types.IsInterface(named) {
			continue
		}
		var impl types.Type
		if types.Implements(named, iface) {
			impl = named
		} else if p := types.NewPointer(named); types.Implements(p, iface) {
			impl = p
		} else {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, b.g.Pkg, m.Name())
		fn, okf := obj.(*types.Func)
		if !okf {
			continue
		}
		if n := b.g.byObj[fn]; n != nil {
			b.edge(owner, n, Interface, call)
		}
	}
}

// identRef records Escape edges for function and method values: a use
// of a declared function outside call position means its body may run
// later from an unknown context.
func (b *gbuilder) identRef(owner *Node, id *ast.Ident, stack []ast.Node) {
	fn, ok := b.g.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	n := b.g.byObj[fn]
	if n == nil {
		return
	}
	// In call position (directly or as the .Sel of the called
	// selector) the static/interface edge already exists.
	site := ast.Expr(id)
	if len(stack) > 0 {
		if se, okSel := stack[len(stack)-1].(*ast.SelectorExpr); okSel && se.Sel == id {
			site = se
			if len(stack) > 1 {
				if ce, okCall := stack[len(stack)-2].(*ast.CallExpr); okCall && ast.Unparen(ce.Fun) == ast.Expr(se) {
					return
				}
			}
		} else if ce, okCall := stack[len(stack)-1].(*ast.CallExpr); okCall && ast.Unparen(ce.Fun) == ast.Expr(id) {
			return
		}
	}
	b.edge(owner, n, Escape, site)
}

// resolveFuncValues adds FuncValue edges from each call-through-value
// site to every function literal with an identical signature.
func (b *gbuilder) resolveFuncValues() {
	for _, site := range b.fvSites {
		for _, n := range b.g.Nodes {
			if n.Lit == nil {
				continue
			}
			sig, ok := b.g.Info.Types[n.Lit].Type.(*types.Signature)
			if !ok {
				continue
			}
			if types.Identical(sig, site.sig) {
				b.edge(site.owner, n, FuncValue, site.call)
			}
		}
	}
}

// Dump renders the whole graph in a stable text form for golden tests:
// one stanza per node in name order, each out-edge and extern call as
// a sorted, deduplicated "-> callee [kind]" line.
func (g *Graph) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "callgraph %s\n", g.Path)
	for _, n := range g.sortedNodes() {
		sb.WriteString(g.dumpNode(n))
	}
	return sb.String()
}

// DumpFrom renders the subgraph reachable from root (over every edge
// kind), in the same stable form as Dump. Golden tests use it to pin
// the shape of one protocol path without freezing the whole package.
func (g *Graph) DumpFrom(root *Node) string {
	if root == nil {
		return "callgraph <missing root>\n"
	}
	reach := map[*Node]bool{root: true}
	work := []*Node{root}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		for _, e := range n.Out {
			if !reach[e.Callee] {
				reach[e.Callee] = true
				work = append(work, e.Callee)
			}
		}
	}
	var nodes []*Node
	for _, n := range g.sortedNodes() {
		if reach[n] {
			nodes = append(nodes, n)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "callgraph %s from %s\n", g.Path, root.Name)
	for _, n := range nodes {
		sb.WriteString(g.dumpNode(n))
	}
	return sb.String()
}

func (g *Graph) sortedNodes() []*Node {
	nodes := append([]*Node(nil), g.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	return nodes
}

func (g *Graph) dumpNode(n *Node) string {
	var lines []string
	for _, e := range n.Out {
		lines = append(lines, fmt.Sprintf("\t-> %s [%s]", e.Callee.Name, e.Kind))
	}
	for _, x := range n.Extern {
		lines = append(lines, fmt.Sprintf("\t-> %s [extern]", externName(x.Callee)))
	}
	sort.Strings(lines)
	lines = dedupStrings(lines)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:\n", n.Name)
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	return sb.String()
}

// externName renders an out-of-package callee as "pkg.f" /
// "pkg.(*T).m" ("builtin.f" shapes do not occur: builtins are not
// *types.Func).
func externName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name() // universe scope (error.Error)
	}
	return fn.Pkg().Name() + "." + FuncName(fn)
}

func dedupStrings(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// PathTo returns a shortest call path (BFS over the given edge kinds)
// from one of roots to target, as node names, or nil. The analyzers
// use it to attach a minimal call-path witness to interprocedural
// findings.
func PathTo(roots []*Node, target *Node, kinds ...EdgeKind) []string {
	allowed := map[EdgeKind]bool{}
	for _, k := range kinds {
		allowed[k] = true
	}
	if len(kinds) == 0 {
		allowed = map[EdgeKind]bool{Static: true, Interface: true, FuncValue: true, Escape: true}
	}
	prev := map[*Node]*Node{}
	var work []*Node
	for _, r := range roots {
		if r == nil {
			continue
		}
		if _, ok := prev[r]; !ok {
			prev[r] = r
			work = append(work, r)
		}
	}
	var found *Node
	for len(work) > 0 && found == nil {
		n := work[0]
		work = work[1:]
		if n == target {
			found = n
			break
		}
		for _, e := range n.Out {
			if !allowed[e.Kind] {
				continue
			}
			if _, seen := prev[e.Callee]; !seen {
				prev[e.Callee] = n
				work = append(work, e.Callee)
			}
		}
	}
	if found == nil {
		return nil
	}
	var rev []string
	for n := found; ; n = prev[n] {
		rev = append(rev, n.Name)
		if prev[n] == n {
			break
		}
	}
	out := make([]string, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}
