package schema

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteCompactRoundTrip(t *testing.T) {
	s := paperSchema(t)
	src := s.WriteCompact()
	s2, err := ParseCompact(src)
	if err != nil {
		t.Fatalf("reparse:\n%s\n%v", src, err)
	}
	if got, want := s2.WriteCompact(), src; got != want {
		t.Errorf("unstable round trip:\n%s\nvs\n%s", got, want)
	}
	// Marks recompute identically.
	for _, n := range s.Nodes() {
		if m := s2.Node(n.Name); m == nil || m.Mark != n.Mark || m.HasText != n.HasText {
			t.Errorf("node %s differs after round trip", n.Name)
		}
	}
}

// TestQuickRandomSchemaRoundTrip generates random schema graphs and
// round-trips them through the DSL.
func TestQuickRandomSchemaRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	f := func() bool {
		n := 2 + r.Intn(8)
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("e%d", i)
		}
		b := NewBuilder(names[0])
		// Random edges; always keep everything reachable via a spine.
		for i := 1; i < n; i++ {
			b.Element(names[r.Intn(i)], names[i])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if r.Intn(6) == 0 {
					b.Element(names[i], names[j])
				}
			}
			if r.Intn(3) == 0 {
				b.Attrs(names[i], "x")
			}
			if r.Intn(3) == 0 {
				b.Text(names[i])
			}
		}
		s, err := b.Build()
		if err != nil {
			return false
		}
		s2, err := ParseCompact(s.WriteCompact())
		if err != nil {
			t.Log(err)
			return false
		}
		if s2.WriteCompact() != s.WriteCompact() {
			return false
		}
		for _, node := range s.Nodes() {
			m := s2.Node(node.Name)
			if m == nil || m.Mark != node.Mark || len(m.Children) != len(node.Children) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
