package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/sqlast"
)

// TestConcurrentReadQueries runs many queries in parallel against one
// database: read-only execution (including lazy hash-index builds)
// must be race-free and deterministic. Run under -race in CI.
func TestConcurrentReadQueries(t *testing.T) {
	db := fixtureDB(t)
	queries := []string{
		"SELECT F.id FROM F WHERE F.text = '2'",
		"SELECT C.id FROM B, C WHERE C.par = B.id AND B.id = 2 ORDER BY C.id",
		"SELECT F.id FROM B, F WHERE B.id = 2 AND F.dewey_pos BETWEEN B.dewey_pos AND B.dewey_pos || X'FF'",
		"SELECT B.id FROM B WHERE EXISTS (SELECT NULL FROM F WHERE F.dewey_pos BETWEEN B.dewey_pos AND B.dewey_pos || X'FF')",
		"SELECT COUNT(*) FROM G",
		"SELECT DISTINCT F.par FROM F",
		// Exercises the shared patternCache: concurrent planners race to
		// compile and publish the same matcher (fast/slow publication
		// must be safe under -race).
		"SELECT F.id FROM F WHERE REGEXP_LIKE(F.text, '^[0-9]+$') ORDER BY F.id",
	}
	want := make([][][]Value, len(queries))
	for i, q := range queries {
		res, err := db.RunSQL(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Rows
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i, q := range queries {
					res, err := db.RunSQL(q)
					if err != nil {
						errs <- err
						return
					}
					if len(res.Rows) != len(want[i]) {
						errs <- errResult{q}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errResult struct{ q string }

func (e errResult) Error() string { return "nondeterministic result for " + e.q }

// TestConcurrentParallelQueries stresses the morsel executor itself
// under concurrency: many client goroutines each running parallel
// queries against one database, so worker pools, the shared plan
// cache, shared hash-join build sides, and the patternCache all
// overlap. Run under -race in CI.
func TestConcurrentParallelQueries(t *testing.T) {
	db := bigDB(t)
	queries := []string{
		"SELECT i.id, i.text FROM item i WHERE i.val > 90 ORDER BY i.id",
		"SELECT DISTINCT i.path_id FROM item i ORDER BY i.path_id DESC",
		"SELECT COUNT(*) FROM item i WHERE i.val < 10",
		"SELECT i.id FROM item i, cat c WHERE i.val = c.id AND c.name = 'cat-3' ORDER BY i.id",
		"SELECT i.id FROM item i WHERE EXISTS (SELECT NULL FROM item j WHERE j.par = i.id AND j.val > 50) ORDER BY i.id",
		"SELECT i.id FROM item i WHERE REGEXP_LIKE(i.text, '^1[0-9]*$') ORDER BY i.id",
	}
	want := make([]*Result, len(queries))
	prepared := make([]*Prepared, len(queries))
	stmts := make([]sqlast.Statement, len(queries))
	for i, q := range queries {
		p, err := db.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		prepared[i] = p
		st, err := sqlast.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		stmts[i] = st
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				for i, q := range queries {
					// Alternate shared-Prepared and ad-hoc execution so both
					// plan-cache entry points run concurrently.
					var res *Result
					var err error
					if (g+rep)%2 == 0 {
						res, err = prepared[i].RunWithOptions(ExecOptions{Parallelism: 4})
					} else {
						res, err = db.RunWithOptions(stmts[i], ExecOptions{Parallelism: 4})
					}
					if err != nil {
						errs <- err
						return
					}
					if !equalResults(res, want[i]) {
						errs <- errResult{q}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentBudgetedQueries interleaves budget-limited and
// unlimited executions of the same statements from many goroutines:
// each statement's accountant is private, so one client's budget
// error must never leak into another's result. Run under -race in
// CI.
func TestConcurrentBudgetedQueries(t *testing.T) {
	db := bigDB(t)
	const q = "SELECT i.id, i.text FROM item i WHERE i.val > 50 ORDER BY i.id"
	st, err := sqlast.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				opts := ExecOptions{Parallelism: g % 3 * 4} // 0, 4, 8
				switch (g + rep) % 3 {
				case 0: // unlimited: must return the full result
					res, err := db.RunWithOptions(st, opts)
					if err != nil {
						errs <- err
						return
					}
					if !equalResults(res, want) {
						errs <- errResult{q}
						return
					}
				case 1: // memory budget: must fail with the typed error
					opts.MaxMemoryBytes = 64
					if _, err := db.RunWithOptions(st, opts); !errors.Is(err, ErrMemoryBudget) {
						errs <- fmt.Errorf("budgeted run: err = %v, want ErrMemoryBudget", err)
						return
					}
				case 2: // row budget
					opts.MaxRows = 2
					if _, err := db.RunWithOptions(st, opts); !errors.Is(err, ErrRowBudget) {
						errs <- fmt.Errorf("budgeted run: err = %v, want ErrRowBudget", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
