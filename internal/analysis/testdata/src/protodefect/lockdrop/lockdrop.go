// Package lockdrop seeds a lock-dropped-across-a-call-edge defect:
// the caller releases the mutex before calling the helper that writes
// the guarded field, so the helper's entry lockset is empty.
package lockdrop

import "sync"

type cache struct {
	mu sync.Mutex
	//guardedby:mu
	n int
}

func (c *cache) bump() {
	c.n++
}

// Update unlocks too early: the guarded write in bump runs lock-free.
func (c *cache) Update() {
	c.mu.Lock()
	c.mu.Unlock()
	c.bump()
}
