package main

import "testing"

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != 11 {
		t.Fatalf("default selection: got %d analyzers, err %v; want 11, nil", len(all), err)
	}
	some, err := selectAnalyzers("rawsql, errdrop")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0].Name != "rawsql" || some[1].Name != "errdrop" {
		t.Fatalf("subset selection wrong: %+v", some)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Fatal("unknown analyzer name must error")
	}
	for _, name := range []string{"ctxflow", "lockscope", "sqltaint", "hotalloc", "xvetignore"} {
		if _, err := selectAnalyzers(name); err != nil {
			t.Errorf("analyzer %s not registered: %v", name, err)
		}
	}
}

// The analyzer run path is exercised end to end against the real tree
// by internal/analysis's tests and by CI's `go run ./cmd/xvet ./...`;
// the -transcheck path by internal/transcheck's tests and CI's
// `make transcheck`.
