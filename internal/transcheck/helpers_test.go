package transcheck

import (
	"testing"

	"repro/internal/pathre"
)

func mustCompile(t *testing.T, pattern string) *pathre.Regexp {
	t.Helper()
	re, err := pathre.Compile(pattern)
	if err != nil {
		t.Fatalf("compile %q: %v", pattern, err)
	}
	return re
}

func equivalentAll(a, b *pathre.Regexp) (bool, string, error) {
	return pathre.Equivalent(a, b)
}
