package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestDeweyCmp(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.DeweyCmp, "deweycmp/a", "deweycmp/ok")
}

// The comparator implementations are the sanctioned sites: running
// deweycmp over the real dewey and keyenc packages must stay clean.
func TestDeweyCmpSanctionsComparators(t *testing.T) {
	expectClean(t, analysis.DeweyCmp, "repro/internal/dewey", "repro/internal/keyenc")
}
