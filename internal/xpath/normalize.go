package xpath

import "fmt"

// NormalizeSteps collapses '//'+step pairs into descendant-axis
// steps, drops self::node() steps (carrying their predicates over is
// unsupported), and extracts a terminal attribute or text() step.
func NormalizeSteps(steps []*Step) ([]*Step, *Step, error) {
	var out []*Step
	for i := 0; i < len(steps); i++ {
		s := steps[i]
		if s.Axis == DescendantOrSelf && s.Test == AnyKindTest && len(s.Predicates) == 0 {
			// '//' abbreviation: combine with the following step.
			if i+1 < len(steps) {
				next := steps[i+1]
				if next.Axis == Child {
					out = append(out, &Step{
						Axis:       Descendant,
						Test:       next.Test,
						Name:       next.Name,
						Predicates: next.Predicates,
					})
					i++
					continue
				}
			}
			// '//' before a non-child step (or at the end): keep as an
			// explicit descendant-or-self over any element.
			out = append(out, &Step{Axis: DescendantOrSelf, Test: NameTest, Name: ""})
			continue
		}
		if s.Axis == Self && s.Test == AnyKindTest {
			if len(s.Predicates) > 0 {
				return nil, nil, fmt.Errorf("xpath: predicates on '.' steps are not supported")
			}
			continue
		}
		if s.Axis == Self {
			return nil, nil, fmt.Errorf("xpath: self axis with a name test is not supported")
		}
		out = append(out, s)
	}
	// Terminal attribute or text() step.
	if len(out) > 0 {
		last := out[len(out)-1]
		if last.Axis == Attribute || last.Test == TextTest {
			if len(last.Predicates) > 0 {
				return nil, nil, fmt.Errorf("xpath: predicates on terminal %s steps are not supported", last)
			}
			out = out[:len(out)-1]
			if len(out) == 0 {
				return nil, nil, fmt.Errorf("xpath: a path cannot consist of only an attribute or text() step")
			}
			return out, last, nil
		}
	}
	for _, s := range out {
		if s.Axis == Attribute {
			return nil, nil, fmt.Errorf("xpath: attribute steps are only supported as the final step")
		}
		if s.Test == TextTest {
			return nil, nil, fmt.Errorf("xpath: text() steps are only supported as the final step")
		}
	}
	return out, nil, nil
}
