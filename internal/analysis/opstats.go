package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// OpStatsMut forbids writing OpStats counter fields from outside
// OpStats's own methods. The executor's EXPLAIN ANALYZE numbers are
// trustworthy only if every increment flows through the mutators in
// opstats.go: those keep the counter semantics documented there (what
// counts as a loop, a probe, an output row) in one place, and they are
// what keeps the serial and morsel-parallel paths merge-compatible. A
// raw `st.rowsOut++` scattered in an operator would silently drift
// from the documented meaning and dodge review of the stats contract.
var OpStatsMut = &Analyzer{
	Name: "opstats",
	Doc: "flag direct writes to OpStats fields in internal/engine outside OpStats " +
		"methods; per-operator counters must go through the opstats.go mutators",
	Run: runOpStats,
}

func runOpStats(pass *Pass) error {
	if !strings.HasSuffix(pass.Pkg.Path(), "internal/engine") {
		return nil
	}
	pass.inspect(func(n ast.Node, stack []ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				pass.checkOpStatsWrite(lhs, stack)
			}
		case *ast.IncDecStmt:
			pass.checkOpStatsWrite(st.X, stack)
		case *ast.UnaryExpr:
			// &s.field escapes the counter for arbitrary later writes.
			if st.Op.String() == "&" {
				pass.checkOpStatsWrite(st.X, stack)
			}
		}
		return true
	})
	return nil
}

// checkOpStatsWrite reports e when it selects a field of engine's
// OpStats outside an OpStats method.
func (p *Pass) checkOpStatsWrite(e ast.Expr, stack []ast.Node) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := p.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	if !isOpStats(selection.Recv()) || p.inOpStatsMethod(stack) {
		return
	}
	p.Reportf(sel.Pos(),
		"direct write to OpStats field %s outside an OpStats method; use the opstats.go mutators",
		sel.Sel.Name)
}

// isOpStats reports whether t is engine's OpStats (possibly behind a
// pointer).
func isOpStats(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "OpStats" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/engine")
}

// inOpStatsMethod reports whether the innermost enclosing function
// declaration is a method with an OpStats (or *OpStats) receiver.
func (p *Pass) inOpStatsMethod(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok || fd.Recv == nil {
			continue
		}
		fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return false
		}
		recv := fn.Type().(*types.Signature).Recv()
		return recv != nil && isOpStats(recv.Type())
	}
	return false
}
