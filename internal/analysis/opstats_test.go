package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestOpStatsMut(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.OpStatsMut,
		"opstats/internal/engine", "opstats/ok")
}

// The real engine must satisfy its own invariant: every OpStats
// counter mutation goes through the opstats.go methods.
func TestOpStatsMutEngineClean(t *testing.T) {
	expectClean(t, analysis.OpStatsMut, "repro/internal/engine")
}
