package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dewey"
	"repro/internal/sqlast"
)

// buildPair creates two databases with identical random tree data:
// one fully indexed, one without any index. Every query must return
// identical results on both — access paths must never change
// semantics.
func buildPair(t testing.TB, seed int64, nodes int) (indexed, bare *DB) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	indexed, bare = NewDB(), NewDB()
	mk := func(db *DB, withIndexes bool) *Table {
		tb, err := db.CreateTable("n",
			Column{"id", TInt}, Column{"par", TInt},
			Column{"dewey_pos", TBytes}, Column{"tag", TText}, Column{"val", TInt})
		if err != nil {
			t.Fatal(err)
		}
		if withIndexes {
			for _, ix := range []struct {
				name string
				cols []string
			}{{"n_pk", []string{"id"}}, {"n_par", []string{"par"}}, {"n_dp", []string{"dewey_pos"}}} {
				if _, err := tb.CreateIndex(ix.name, ix.cols...); err != nil {
					t.Fatal(err)
				}
			}
		}
		return tb
	}
	t1 := mk(indexed, true)
	t2 := mk(bare, false)
	// Random forest of depth <= 4.
	type row struct {
		id, par int64
		pos     dewey.Pos
	}
	var rows []row
	var build func(parent *row, depth int)
	id := int64(0)
	build = func(parent *row, depth int) {
		if len(rows) >= nodes || depth > 4 {
			return
		}
		id++
		var pos dewey.Pos
		var parID int64
		if parent == nil {
			pos = dewey.New(int(id))
		} else {
			pos = parent.pos.Child(len(rows) % 7)
			parID = parent.id
		}
		rw := row{id: id, par: parID, pos: pos}
		rows = append(rows, rw)
		for i := 0; i < r.Intn(4); i++ {
			build(&rows[len(rows)-1], depth+1)
		}
	}
	for len(rows) < nodes {
		build(nil, 0)
	}
	tags := []string{"a", "b", "c"}
	for _, rw := range rows {
		par := NewInt(rw.par)
		if rw.par == 0 {
			par = Null
		}
		vals := []Value{NewInt(rw.id), par, NewBytes(rw.pos), NewText(tags[int(rw.id)%3]), NewInt(rw.id % 10)}
		t1.MustInsert(vals...)
		t2.MustInsert(vals...)
	}
	return indexed, bare
}

func TestPlanIndependence(t *testing.T) {
	indexed, bare := buildPair(t, 5, 400)
	queries := []string{
		"SELECT a.id FROM n a WHERE a.val = 3 ORDER BY a.id",
		"SELECT a.id FROM n a WHERE a.id = 17",
		"SELECT b.id FROM n a, n b WHERE a.id = 5 AND b.par = a.id ORDER BY b.id",
		"SELECT b.id FROM n a, n b WHERE a.id = 5 AND b.dewey_pos BETWEEN a.dewey_pos AND a.dewey_pos || X'FF' ORDER BY b.id",
		"SELECT b.id FROM n a, n b WHERE a.id = 5 AND b.dewey_pos > a.dewey_pos || X'FF' ORDER BY b.id",
		"SELECT b.id FROM n a, n b WHERE a.id = 40 AND a.dewey_pos > b.dewey_pos || X'FF' ORDER BY b.id",
		"SELECT DISTINCT a.tag FROM n a ORDER BY a.tag",
		"SELECT a.id FROM n a WHERE EXISTS (SELECT NULL FROM n b WHERE b.par = a.id AND b.val = 2) ORDER BY a.id",
		"SELECT a.id FROM n a WHERE NOT EXISTS (SELECT NULL FROM n b WHERE b.par = a.id) AND a.val < 3 ORDER BY a.id",
		"SELECT a.id FROM n a WHERE (SELECT COUNT(*) FROM n b WHERE b.par = a.id) = 2 ORDER BY a.id",
		"SELECT a.id FROM n a WHERE a.tag = 'b' AND a.val >= 5 ORDER BY a.id DESC",
		"SELECT a.id FROM n a WHERE a.par IS NULL ORDER BY a.id",
		"SELECT a.id FROM n a, n b WHERE a.val = b.val AND a.id = 9 AND b.id <> 9 ORDER BY b.id",
	}
	for _, q := range queries {
		ri, err := indexed.RunSQL(q)
		if err != nil {
			t.Fatalf("%s (indexed): %v", q, err)
		}
		rb, err := bare.RunSQL(q)
		if err != nil {
			t.Fatalf("%s (bare): %v", q, err)
		}
		if !equalResults(ri, rb) {
			t.Errorf("%s: indexed %d rows, bare %d rows", q, len(ri.Rows), len(rb.Rows))
		}
	}
}

// TestPlanIndependenceRandomRanges drives the Dewey range machinery
// with many random bound combinations.
func TestPlanIndependenceRandomRanges(t *testing.T) {
	indexed, bare := buildPair(t, 11, 300)
	r := rand.New(rand.NewSource(3))
	ops := []string{">", ">=", "<", "<="}
	for i := 0; i < 60; i++ {
		anchor := 1 + r.Intn(200)
		op := ops[r.Intn(len(ops))]
		q := fmt.Sprintf(
			"SELECT b.id FROM n a, n b WHERE a.id = %d AND b.dewey_pos %s a.dewey_pos ORDER BY b.id",
			anchor, op)
		ri, err := indexed.RunSQL(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		rb, err := bare.RunSQL(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !equalResults(ri, rb) {
			t.Errorf("%s: indexed %d rows, bare %d rows", q, len(ri.Rows), len(rb.Rows))
		}
	}
}

func TestExplainOutput(t *testing.T) {
	indexed, _ := buildPair(t, 2, 100)
	st := sqlast.MustParse("SELECT b.id FROM n a, n b WHERE a.id = 5 AND b.dewey_pos BETWEEN a.dewey_pos AND a.dewey_pos || X'FF'")
	plan, err := indexed.Explain(st)
	if err != nil {
		t.Fatal(err)
	}
	if plan == "" {
		t.Fatal("empty plan")
	}
	// Union explain.
	st = sqlast.MustParse("SELECT a.id FROM n a UNION SELECT b.id FROM n b")
	plan, err = indexed.Explain(st)
	if err != nil {
		t.Fatal(err)
	}
	if plan == "" {
		t.Fatal("empty union plan")
	}
	// Error propagation.
	if _, err := indexed.Explain(sqlast.MustParse("SELECT x.id FROM missing x")); err == nil {
		t.Fatal("explain of bad statement should fail")
	}
}

// TestCorrelationTwoLevels exercises EXISTS nested inside EXISTS with
// correlation to the outermost table.
func TestCorrelationTwoLevels(t *testing.T) {
	indexed, bare := buildPair(t, 9, 200)
	q := "SELECT a.id FROM n a WHERE EXISTS (" +
		"SELECT NULL FROM n b WHERE b.par = a.id AND EXISTS (" +
		"SELECT NULL FROM n c WHERE c.par = b.id AND c.val = a.val)) ORDER BY a.id"
	ri, err := indexed.RunSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := bare.RunSQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if !equalResults(ri, rb) {
		t.Errorf("nested correlation differs: %d vs %d rows", len(ri.Rows), len(rb.Rows))
	}
}

func TestShadowingRejected(t *testing.T) {
	db, _ := buildPair(t, 1, 10)
	// Inner subselect reusing the outer's effective name must be an
	// error (ambiguous correlation), not silent shadowing.
	_, err := db.RunSQL("SELECT a.id FROM n a WHERE EXISTS (SELECT NULL FROM n a WHERE a.id = 1)")
	if err == nil {
		t.Fatal("name shadowing should be rejected")
	}
}
