package engine

import (
	"fmt"
	"strings"
	"time"
)

// OpStats is the per-operator instrumentation block of the physical
// plan: every operator node of a lowered statement owns one slot in
// the statement's stats frame. Counters are plain int64s — NOT
// atomics — because frames are sharded per morsel worker and merged
// after the workers join, so no two goroutines ever touch the same
// slot. The opstats analyzer (internal/analysis) enforces that the
// fields below are mutated only through the methods in this file,
// keeping that single-writer discipline mechanical.
type OpStats struct {
	loops       int64 // times the operator was (re)opened / rebound
	rowsIn      int64 // rows arriving at the operator
	rowsOut     int64 // rows the operator emitted downstream
	probes      int64 // index / hash-table probes issued
	patternHits int64 // REGEXP_LIKE matchers served from the pattern cache
	bytes       int64 // bytes this operator charged to the resource governor
	nanos       int64 // wall time attributed to the operator (EXPLAIN ANALYZE runs only)
}

// open records one (re)opening of the operator: a top-level plan
// opens each operator once, a nested-loop inner step once per outer
// row, a correlated subplan once per evaluation.
func (s *OpStats) open() { s.loops++ }

// rowIn records one row arriving at the operator.
func (s *OpStats) rowIn() { s.rowsIn++ }

// rowsInN records n rows arriving at once (batch operators: sort,
// deferred dedup).
func (s *OpStats) rowsInN(n int64) { s.rowsIn += n }

// rowOut records one row emitted downstream.
func (s *OpStats) rowOut() { s.rowsOut++ }

// rowsOutN records n rows emitted at once (batch operators and the
// driving scan's materialized id list).
func (s *OpStats) rowsOutN(n int64) { s.rowsOut += n }

// probe records one index or hash-table probe.
func (s *OpStats) probe() { s.probes++ }

// patternHit records one REGEXP_LIKE matcher served from the shared
// pattern cache during this operator's expression evaluation.
func (s *OpStats) patternHit() { s.patternHits++ }

// charge records bytes this operator charged to the statement's
// resource governor (hash-join builds, DISTINCT sets, union dedup).
func (s *OpStats) charge(n int64) { s.bytes += n }

// addTime accumulates wall time attributed to the operator. Only
// EXPLAIN ANALYZE executions measure time; plain runs never read the
// clock per operator.
func (s *OpStats) addTime(d time.Duration) { s.nanos += int64(d) }

// setRowFlow overwrites the row counters with values derived at
// statement end. Per-step filter operators do not count rows in the
// hot loop: their flow is fully determined by their neighbours
// (rowsIn is the step scan's rowsOut; rowsOut is the next scan's
// loops, or the output operator's rowsIn for the last step), so
// finalizeFrame reconstructs it once per execution instead of the
// row loop paying two counter writes per candidate row.
func (s *OpStats) setRowFlow(in, out int64) { s.rowsIn, s.rowsOut = in, out }

// merge folds another shard of the same operator's counters into the
// receiver; the parallel collector uses it to combine per-worker
// frames after the workers have joined.
func (s *OpStats) merge(o *OpStats) {
	s.loops += o.loops
	s.rowsIn += o.rowsIn
	s.rowsOut += o.rowsOut
	s.probes += o.probes
	s.patternHits += o.patternHits
	s.bytes += o.bytes
	s.nanos += o.nanos
}

// Read-only accessors, for tests and tooling.

// Loops returns the times the operator was (re)opened.
func (s *OpStats) Loops() int64 { return s.loops }

// RowsIn returns the rows that arrived at the operator.
func (s *OpStats) RowsIn() int64 { return s.rowsIn }

// RowsOut returns the rows the operator emitted.
func (s *OpStats) RowsOut() int64 { return s.rowsOut }

// Probes returns the index/hash probes the operator issued.
func (s *OpStats) Probes() int64 { return s.probes }

// PatternHits returns the pattern-cache hits attributed to the
// operator.
func (s *OpStats) PatternHits() int64 { return s.patternHits }

// Bytes returns the bytes the operator charged to the governor.
func (s *OpStats) Bytes() int64 { return s.bytes }

// Time returns the wall time attributed to the operator (zero unless
// the statement ran under EXPLAIN ANALYZE).
func (s *OpStats) Time() time.Duration { return time.Duration(s.nanos) }

// String renders the stats block the way EXPLAIN ANALYZE prints it.
func (s *OpStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loops=%d in=%d out=%d probes=%d", s.loops, s.rowsIn, s.rowsOut, s.probes)
	if s.patternHits > 0 {
		fmt.Fprintf(&b, " pattern-hits=%d", s.patternHits)
	}
	if s.bytes > 0 {
		fmt.Fprintf(&b, " mem=%dB", s.bytes)
	}
	fmt.Fprintf(&b, " time=%s", time.Duration(s.nanos).Round(time.Microsecond))
	return b.String()
}

// opFrame is one shard of a statement's operator stats: one slot per
// operator node, indexed by opNode.id. The serial executor uses a
// single frame; each morsel worker gets its own and the shards are
// merged once the workers have joined.
type opFrame []OpStats

// mergeFrom folds a worker's shard into the receiver.
func (f opFrame) mergeFrom(w opFrame) {
	for i := range w {
		f[i].merge(&w[i])
	}
}
