package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/failpoint"
	"repro/internal/keyenc"
)

// Column describes one column of a table.
type Column struct {
	Name string
	Type Type
}

// Table is a row-store table with optional B+tree indexes.
type Table struct {
	Name    string
	Cols    []Column
	Rows    [][]Value
	colIdx  map[string]int
	indexes []*Index
	// hashIdx caches transient single-column hash indexes built on
	// demand by the executor for equijoins on non-indexed columns — the
	// engine's hash-join mechanism. Keyed by column position. hashMu
	// makes concurrent read-only queries safe; writes (Insert) are not
	// concurrency-safe and must be externally serialized.
	hashMu  sync.Mutex
	hashIdx map[int]map[string][]int64
	hashMax map[int]int // largest bucket per hashed column
	// version counts mutations (Insert, CreateIndex) so cached plans
	// can detect that a table they were planned against has changed.
	// Mutations follow the same contract as the fields above: they
	// must be externally serialized against concurrent queries.
	version uint64
}

// Index is a B+tree index over one or more columns.
type Index struct {
	Name string
	Cols []int // column positions, in key order
	Tree *btree.Tree
}

// DB is a database: a set of tables.
type DB struct {
	tables map[string]*Table
	names  []string
	plans  planCache
	// peakMem is the high-water mark of per-statement accounted
	// memory across every statement run against this DB.
	peakMem atomic.Int64
}

// notePeakMemory folds one statement's peak accounted memory into
// the DB-level high-water mark.
func (db *DB) notePeakMemory(peak int64) {
	for {
		p := db.peakMem.Load()
		if peak <= p || db.peakMem.CompareAndSwap(p, peak) {
			return
		}
	}
}

// PeakStatementMemory returns the largest peak accounted memory any
// single statement has reached on this DB (see Result.PeakMemBytes).
func (db *DB) PeakStatementMemory() int64 { return db.peakMem.Load() }

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: map[string]*Table{}} }

// CreateTable creates a table. The column list must be non-empty with
// unique names.
func (db *DB) CreateTable(name string, cols ...Column) (*Table, error) {
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("engine: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("engine: table %q needs at least one column", name)
	}
	t := &Table{Name: name, Cols: cols, colIdx: map[string]int{},
		hashIdx: map[int]map[string][]int64{}, hashMax: map[int]int{}}
	for i, c := range cols {
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("engine: duplicate column %q in table %q", c.Name, name)
		}
		t.colIdx[c.Name] = i
	}
	db.tables[name] = t
	db.names = append(db.names, name)
	return t, nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// TableNames returns the table names in creation order.
func (db *DB) TableNames() []string { return append([]string(nil), db.names...) }

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// Insert appends a row. The row length must match the column count;
// value kinds must be compatible with the column types (or NULL).
// All indexes are maintained.
func (t *Table) Insert(row []Value) (int64, error) {
	if len(row) != len(t.Cols) {
		return 0, fmt.Errorf("engine: table %q expects %d values, got %d", t.Name, len(t.Cols), len(row))
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		ok := false
		switch t.Cols[i].Type {
		case TInt:
			ok = v.Kind == KInt
		case TFloat:
			ok = v.Kind == KFloat || v.Kind == KInt
		case TText:
			ok = v.Kind == KText
		case TBytes:
			ok = v.Kind == KBytes
		}
		if !ok {
			return 0, fmt.Errorf("engine: table %q column %q (%s) cannot hold %s",
				t.Name, t.Cols[i].Name, t.Cols[i].Type, v.Kind)
		}
	}
	id := int64(len(t.Rows))
	t.Rows = append(t.Rows, row)
	for _, ix := range t.indexes {
		ix.Tree.Insert(ix.key(row), id)
	}
	// Transient hash indexes become stale; drop them.
	if len(t.hashIdx) > 0 {
		t.hashIdx = map[int]map[string][]int64{}
		t.hashMax = map[int]int{}
	}
	t.version++
	return id, nil
}

// MustInsert is Insert that panics on error, for loaders with
// statically known shapes.
func (t *Table) MustInsert(row ...Value) int64 {
	id, err := t.Insert(row)
	if err != nil {
		panic(err)
	}
	return id
}

// CreateIndex builds a B+tree index over the named columns. Existing
// rows are indexed immediately.
func (t *Table) CreateIndex(name string, cols ...string) (*Index, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("engine: index %q needs at least one column", name)
	}
	positions := make([]int, len(cols))
	for i, c := range cols {
		p := t.ColIndex(c)
		if p < 0 {
			return nil, fmt.Errorf("engine: index %q: no column %q in table %q", name, c, t.Name)
		}
		positions[i] = p
	}
	for _, existing := range t.indexes {
		if existing.Name == name {
			return nil, fmt.Errorf("engine: index %q already exists on table %q", name, t.Name)
		}
	}
	ix := &Index{Name: name, Cols: positions, Tree: btree.New()}
	for id, row := range t.Rows {
		ix.Tree.Insert(ix.key(row), int64(id))
	}
	t.indexes = append(t.indexes, ix)
	// A new index can change the chosen access paths of cached plans.
	t.version++
	return ix, nil
}

// Indexes returns the table's indexes.
func (t *Table) Indexes() []*Index { return t.indexes }

// FindIndex returns an index whose leading columns are exactly the
// given column positions (in order), preferring the shortest such
// index; nil if none exists.
func (t *Table) FindIndex(leading ...int) *Index {
	var best *Index
	for _, ix := range t.indexes {
		if len(ix.Cols) < len(leading) {
			continue
		}
		match := true
		for i, c := range leading {
			if ix.Cols[i] != c {
				match = false
				break
			}
		}
		if match && (best == nil || len(ix.Cols) < len(best.Cols)) {
			best = ix
		}
	}
	return best
}

// key builds the index key for a row.
func (ix *Index) key(row []Value) []byte {
	var k []byte
	for _, c := range ix.Cols {
		k = encodeValue(k, row[c])
	}
	return k
}

// encodeValue appends the order-preserving encoding of v.
func encodeValue(dst []byte, v Value) []byte {
	switch v.Kind {
	case KNull:
		return keyenc.AppendNull(dst)
	case KInt, KBool:
		return keyenc.AppendInt(dst, v.I)
	case KFloat:
		// Floats are keyed by their text form only in row-distinct keys;
		// indexes on float columns are not used for range scans here.
		return keyenc.AppendText(dst, v.String())
	case KText:
		return keyenc.AppendText(dst, v.S)
	case KBytes:
		return keyenc.AppendBytes(dst, v.B)
	}
	return dst
}

// hash returns (building on demand) the transient hash index for a
// column: the executor's hash-join build side. This unaccounted form
// serves the planner's cost estimation; execution paths go through
// hashFor so builds are charged to the running statement.
func (t *Table) hash(col int) map[string][]int64 {
	m, _, _, err := t.hashFor(col, nil)
	if err != nil {
		// With a nil accountant the only failure mode is an armed
		// failpoint; planner-side estimation has no error path, so an
		// injected build fault surfaces through the statement panic
		// boundary instead.
		panic(err)
	}
	return m
}

// hashFor returns the transient hash index for a column, building it
// on demand. A build is charged to the statement's accountant and
// aborts (without publishing a partial map) when the memory budget
// is exceeded; built reports whether this call performed the build
// (so callers can re-check deadlines after a long one) and bytes the
// amount it charged, for attribution to the probing operator's
// OpStats. The "engine/hash-build" failpoint fires on every access,
// built or cached, making the hash path's error handling injectable
// regardless of which statement performed the build.
func (t *Table) hashFor(col int, ac *accountant) (m map[string][]int64, built bool, bytes int64, err error) {
	if err := failpoint.Inject("engine/hash-build"); err != nil {
		return nil, false, 0, err
	}
	t.hashMu.Lock()
	defer t.hashMu.Unlock()
	if m, ok := t.hashIdx[col]; ok {
		return m, false, 0, nil
	}
	m = make(map[string][]int64, len(t.Rows))
	var buf []byte
	for id, row := range t.Rows {
		buf = encodeValue(buf[:0], row[col])
		key := string(buf)
		ids, ok := m[key]
		if !ok {
			bytes += int64(len(key)) + mapEntryBytes
		}
		bytes += 8 // one row id
		m[key] = append(ids, int64(id))
		if id&0x3FF == 0x3FF {
			// Abort an over-budget build mid-way rather than after
			// materializing the whole side.
			if err := ac.wouldExceed(bytes); err != nil {
				return nil, false, 0, err
			}
		}
	}
	if err := ac.growBytes(bytes); err != nil {
		return nil, false, 0, err
	}
	max := 0
	for _, ids := range m {
		if len(ids) > max {
			max = len(ids)
		}
	}
	t.hashIdx[col] = m
	t.hashMax[col] = max
	return m, true, bytes, nil
}

// hashMaxBucket returns the largest bucket of the column's transient
// hash index (building it if needed) — the planner's worst-case
// estimate for a hash join probe.
func (t *Table) hashMaxBucket(col int) int {
	t.hash(col)
	t.hashMu.Lock()
	defer t.hashMu.Unlock()
	return t.hashMax[col]
}

// Stats returns simple statistics used by the planner and reports.
type Stats struct {
	Rows    int
	Indexes int
}

// Stats returns the table's statistics.
func (t *Table) Stats() Stats { return Stats{Rows: len(t.Rows), Indexes: len(t.indexes)} }

// SortedTableSizes renders "name=rows" pairs sorted by name, for
// loader diagnostics.
func (db *DB) SortedTableSizes() []string {
	names := db.TableNames()
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = fmt.Sprintf("%s=%d", n, len(db.tables[n].Rows))
	}
	return out
}
