// Malformed suppression directives: each is itself a diagnostic —
// unexplained or untargeted ignores rot.
package a

func placeholder() int {
	//xvet:ignore rawsql // want `xvet:ignore without a reason`
	x := 1
	//xvet:ignore -- concatenation is fine here // want `xvet:ignore names no analyzer`
	x++
	//xvet:ignore nosuch -- the analyzer was renamed // want `xvet:ignore names unknown analyzer "nosuch"`
	x++
	//xvet:ignore rawsql sqltaint -- two analyzers, one reason: well-formed
	x++
	return x
}
