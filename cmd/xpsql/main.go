// Command xpsql translates XPath queries to SQL with the PPF
// technique and optionally executes them against a document loaded
// into the embedded engine.
//
// Usage:
//
//	xpsql -schema site.schema [-xsd] [-mapping aware|edge|accel] \
//	      [-load doc.xml] [-explain] 'XPATH' [...]
//
// The schema file uses the compact DSL (or XSD with -xsd):
//
//	!root A
//	A -> B @x
//	B -> C G
//	F #text
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/sqlast"
	"repro/internal/xmltree"
)

func main() {
	schemaPath := flag.String("schema", "", "schema file (compact DSL, or XSD with -xsd); required for the aware mapping")
	useXSD := flag.Bool("xsd", false, "parse the schema file as XML Schema")
	mapping := flag.String("mapping", "aware", "storage mapping: aware, edge or accel")
	load := flag.String("load", "", "XML document to load and query")
	explain := flag.Bool("explain", false, "print the engine's execution plan (requires -load)")
	noOmit := flag.Bool("no-path-omission", false, "disable the Section 4.5 path-filter omission")
	noFK := flag.Bool("no-fk-joins", false, "use Dewey joins even for child/parent steps")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "xpsql: no XPath queries given")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*schemaPath, *useXSD, *mapping, *load, *explain, *noOmit, *noFK, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "xpsql:", err)
		os.Exit(1)
	}
}

func run(schemaPath string, useXSD bool, mapping, load string, explain, noOmit, noFK bool, queries []string) error {
	var s *schema.Schema
	var doc *xmltree.Document
	var err error

	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		doc, err = xmltree.Parse(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	switch {
	case schemaPath != "":
		data, err := os.ReadFile(schemaPath)
		if err != nil {
			return err
		}
		if useXSD {
			s, err = schema.ParseXSD(strings.NewReader(string(data)))
		} else {
			s, err = schema.ParseCompact(string(data))
		}
		if err != nil {
			return err
		}
	case doc != nil:
		if s, err = schema.Infer(doc); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "xpsql: note: schema inferred from the document")
	case mapping == "aware":
		return fmt.Errorf("the aware mapping needs -schema (or -load to infer one)")
	}

	var db *engine.DB
	translate := func(q string) (sqlast.Statement, string, error) {
		switch mapping {
		case "aware":
			opts := core.DefaultOptions()
			opts.PathFilterOmission = !noOmit
			opts.FKChildParent = !noFK
			tr, err := core.New(s, &opts).Translate(q)
			if err != nil {
				return nil, "", err
			}
			return tr.Stmt, tr.SQL, nil
		case "edge":
			tr, err := core.NewEdge(nil).Translate(q)
			if err != nil {
				return nil, "", err
			}
			return tr.Stmt, tr.SQL, nil
		case "accel":
			tr, err := accel.New().Translate(q)
			if err != nil {
				return nil, "", err
			}
			return tr.Stmt, tr.SQL, nil
		default:
			return nil, "", fmt.Errorf("unknown mapping %q", mapping)
		}
	}

	if doc != nil {
		switch mapping {
		case "aware":
			st, err := shred.NewSchemaAware(s)
			if err != nil {
				return err
			}
			if _, err := st.Load(doc); err != nil {
				return err
			}
			db = st.DB
		case "edge":
			st, err := shred.NewEdge()
			if err != nil {
				return err
			}
			if _, err := st.Load(doc); err != nil {
				return err
			}
			db = st.DB
		case "accel":
			st, err := shred.NewAccel()
			if err != nil {
				return err
			}
			if _, err := st.Load(doc); err != nil {
				return err
			}
			db = st.DB
		}
	}

	for _, q := range queries {
		stmt, sql, err := translate(q)
		if err != nil {
			return fmt.Errorf("%s: %w", q, err)
		}
		fmt.Printf("-- %s\n%s\n", q, sql)
		if db == nil {
			continue
		}
		if explain {
			plan, err := db.Explain(stmt)
			if err != nil {
				return err
			}
			fmt.Println("-- plan:")
			for _, line := range strings.Split(strings.TrimRight(plan, "\n"), "\n") {
				fmt.Println("--   " + line)
			}
		}
		res, err := db.Run(stmt)
		if err != nil {
			return err
		}
		fmt.Printf("-- %d node(s)\n", len(res.Rows))
		for i, r := range res.Rows {
			if i >= 20 {
				fmt.Printf("-- ... %d more\n", len(res.Rows)-20)
				break
			}
			cells := make([]string, len(r))
			for j, v := range r {
				cells[j] = v.String()
			}
			fmt.Println("--   " + strings.Join(cells, " | "))
		}
		fmt.Println()
	}
	return nil
}
