package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeweyCmp flags direct byte-level comparisons of Dewey positions
// outside internal/dewey and internal/keyenc. The paper's axis
// semantics (Table 2; Lemmas 1–2) hold only under the exact
// lexicographic comparators exported by internal/dewey — in
// particular the descendant range is (d(m), d(m)||0xFF), which an ad
// hoc bytes.Compare or string() comparison silently gets wrong at the
// sentinel boundary. All Pos comparisons must go through
// dewey.Compare / dewey.Is* or the keyenc order-preserving encodings.
var DeweyCmp = &Analyzer{
	Name: "deweycmp",
	Doc: "flag ==/</bytes.Compare/string() comparisons of dewey.Pos values outside " +
		"internal/dewey and internal/keyenc; use the dewey axis comparators (Table 2, Lemmas 1-2)",
	Run: runDeweyCmp,
}

// deweyPosPath/deweyPosName identify the protected type.
const (
	deweyPkgSuffix = "internal/dewey"
	deweyPosName   = "Pos"
)

// bytesCmpFuncs are the bytes-package entry points that perform raw
// lexicographic comparison.
var bytesCmpFuncs = map[string]bool{
	"Compare": true, "Equal": true, "HasPrefix": true, "HasSuffix": true, "Contains": true,
}

func runDeweyCmp(pass *Pass) error {
	path := pass.Pkg.Path()
	if strings.HasSuffix(path, "internal/dewey") || strings.HasSuffix(path, "internal/keyenc") {
		return nil // the sanctioned comparator implementations
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok || pass.importedPkg(sel.X) != "bytes" || !bytesCmpFuncs[sel.Sel.Name] {
					break
				}
				for _, arg := range x.Args {
					if carriesDeweyPos(pass, arg) {
						pass.Reportf(x.Pos(),
							"bytes.%s on dewey.Pos; use dewey.Compare or the dewey.Is* axis comparators (Table 2, Lemmas 1-2)",
							sel.Sel.Name)
						break
					}
				}
			case *ast.BinaryExpr:
				switch x.Op {
				case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				default:
					return true
				}
				// p == nil is the idiomatic emptiness test, not a comparison
				// between positions.
				if isNilIdent(x.X) || isNilIdent(x.Y) {
					return true
				}
				if carriesDeweyPos(pass, x.X) || carriesDeweyPos(pass, x.Y) {
					pass.Reportf(x.Pos(),
						"direct %s comparison of dewey.Pos; use dewey.Compare or the dewey.Is* axis comparators (Table 2, Lemmas 1-2)",
						x.Op)
				}
			}
			return true
		})
	}
	return nil
}

// carriesDeweyPos reports whether e is a dewey.Pos value, possibly
// wrapped in parens or string()/[]byte() conversions that launder the
// type without changing the bytes.
func carriesDeweyPos(pass *Pass, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return carriesDeweyPos(pass, x.X)
	case *ast.CallExpr:
		if len(x.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
				return carriesDeweyPos(pass, x.Args[0])
			}
		}
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == deweyPosName && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), deweyPkgSuffix)
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
