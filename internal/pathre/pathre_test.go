package pathre

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

func TestTable1Patterns(t *testing.T) {
	// The regular-expression equivalents from Table 1 of the paper.
	cases := []struct {
		pattern string
		match   []string
		reject  []string
	}{
		{`^.*/B/C$`,
			[]string{"/A/B/C", "/B/C", "/A/X/B/C"},
			[]string{"/A/B/C/D", "/A/B", "/A/BB/C"}},
		{`^/A/B/(.+/)?F$`,
			[]string{"/A/B/F", "/A/B/C/F", "/A/B/C/E/F"},
			[]string{"/A/F", "/A/B/F/G", "/X/A/B/F"}},
		{`^.*/C/[^/]+/F$`,
			[]string{"/A/B/C/D/F", "/C/E/F"},
			[]string{"/C/F", "/C/D/E/F"}},
		{`^.*/A/B/(.+/)?F$`,
			[]string{"/X/A/B/F", "/A/B/C/F"},
			[]string{"/A/B", "/B/A/F"}},
	}
	for _, c := range cases {
		re := MustCompile(c.pattern)
		for _, s := range c.match {
			if !re.MatchString(s) {
				t.Errorf("%q should match %q", c.pattern, s)
			}
		}
		for _, s := range c.reject {
			if re.MatchString(s) {
				t.Errorf("%q should not match %q", c.pattern, s)
			}
		}
	}
}

func TestLiteralFastPath(t *testing.T) {
	re := MustCompile(`^/A/B$`)
	if re.literal == nil {
		t.Fatal("anchored literal pattern did not take the literal fast path")
	}
	if !re.MatchString("/A/B") || re.MatchString("/A/B/C") || re.MatchString("x/A/B") {
		t.Fatal("literal fast path mismatch")
	}
}

func TestPrefixSuffixFastPath(t *testing.T) {
	re := MustCompile(`^/A/.*/F$`)
	if re.prefix == nil {
		t.Fatal("prefix/suffix pattern did not take the fast path")
	}
	if !re.MatchString("/A/B/C/F") || re.MatchString("/A/F") /* needs the middle */ {
		t.Fatal("prefix/suffix semantics wrong")
	}
	// Overlap: '^/A.*A$' must not match "/A" (length check).
	re2 := MustCompile(`^/A.*A$`)
	if re2.MatchString("/A") {
		t.Fatal("overlapping prefix/suffix matched short input")
	}
	if !re2.MatchString("/AA") || !re2.MatchString("/AxxA") {
		t.Fatal("prefix/suffix should match")
	}
}

func TestUnanchoredSubstringSemantics(t *testing.T) {
	// POSIX ERE: pattern without anchors matches any substring.
	re := MustCompile(`B/C`)
	if !re.MatchString("/A/B/C/D") {
		t.Fatal("substring match failed")
	}
	if re.MatchString("/A/B") {
		t.Fatal("false substring match")
	}
}

func TestAlternation(t *testing.T) {
	re := MustCompile(`^(/A|/B)/C$`)
	for s, want := range map[string]bool{"/A/C": true, "/B/C": true, "/C": false, "/A/B/C": false} {
		if re.MatchString(s) != want {
			t.Errorf("match %q = %v, want %v", s, !want, want)
		}
	}
}

func TestQuantifiers(t *testing.T) {
	cases := []struct {
		pattern string
		inputs  map[string]bool
	}{
		{`^a*$`, map[string]bool{"": true, "a": true, "aaaa": true, "ab": false}},
		{`^a+$`, map[string]bool{"": false, "a": true, "aaa": true}},
		{`^a?b$`, map[string]bool{"b": true, "ab": true, "aab": false}},
		{`^(ab)+$`, map[string]bool{"ab": true, "abab": true, "aba": false, "": false}},
		{`^(a|b)*c$`, map[string]bool{"c": true, "abbac": true, "abd": false}},
	}
	for _, c := range cases {
		re := MustCompile(c.pattern)
		for s, want := range c.inputs {
			if got := re.MatchString(s); got != want {
				t.Errorf("%q match %q = %v, want %v", c.pattern, s, got, want)
			}
		}
	}
}

func TestClasses(t *testing.T) {
	re := MustCompile(`^[^/]+$`)
	if !re.MatchString("abc") || re.MatchString("a/b") || re.MatchString("") {
		t.Fatal("negated class semantics wrong")
	}
	re = MustCompile(`^[a-c0-2]+$`)
	if !re.MatchString("ab2c0") || re.MatchString("d") || re.MatchString("3") {
		t.Fatal("range class semantics wrong")
	}
	re = MustCompile(`^[-a]$`) // literal '-' at edges... our parser: '-' first is literal
	if !re.MatchString("-") || !re.MatchString("a") {
		t.Fatal("leading dash should be literal")
	}
	re = MustCompile(`^[]a]$`) // ']' first is literal per POSIX
	if !re.MatchString("]") || !re.MatchString("a") {
		t.Fatal("leading ] should be literal")
	}
}

func TestEscapes(t *testing.T) {
	re := MustCompile(`^a\.b$`)
	if !re.MatchString("a.b") || re.MatchString("axb") {
		t.Fatal("escaped dot semantics wrong")
	}
	re = MustCompile(`^a\$$`)
	if !re.MatchString("a$") {
		t.Fatal("escaped dollar semantics wrong")
	}
}

func TestCompileErrors(t *testing.T) {
	for _, pat := range []string{`(ab`, `ab)`, `[ab`, `*a`, `a\`, `[z-a]`, `a(?`} {
		if _, err := Compile(pat); err == nil {
			t.Errorf("Compile(%q) should fail", pat)
		}
	}
}

// TestQuickAgainstStdlib cross-checks the NFA against the stdlib
// regexp package on random patterns from the translator's grammar and
// random path inputs.
func TestQuickAgainstStdlib(t *testing.T) {
	names := []string{"A", "B", "C", "D", "item", "keyword"}
	r := rand.New(rand.NewSource(99))
	randPattern := func() string {
		var b strings.Builder
		b.WriteByte('^')
		if r.Intn(2) == 0 {
			b.WriteString(".*")
		}
		steps := 1 + r.Intn(4)
		for i := 0; i < steps; i++ {
			switch r.Intn(4) {
			case 0:
				b.WriteString("/(.+/)?" + names[r.Intn(len(names))])
			case 1:
				b.WriteString("/[^/]+")
			default:
				b.WriteString("/" + names[r.Intn(len(names))])
			}
		}
		b.WriteByte('$')
		return b.String()
	}
	randPath := func() string {
		var b strings.Builder
		for i, n := 0, 1+r.Intn(6); i < n; i++ {
			b.WriteString("/" + names[r.Intn(len(names))])
		}
		return b.String()
	}
	f := func() bool {
		pat := randPattern()
		mine, err := Compile(pat)
		if err != nil {
			t.Logf("compile %q: %v", pat, err)
			return false
		}
		std := regexp.MustCompile(pat)
		for i := 0; i < 20; i++ {
			s := randPath()
			if mine.MatchString(s) != std.MatchString(s) {
				t.Logf("pattern %q input %q: mine=%v std=%v", pat, s, mine.MatchString(s), std.MatchString(s))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomGeneralPatterns stresses the NFA (bypassing fast
// paths) against stdlib on small alphabet patterns.
func TestQuickRandomGeneralPatterns(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var gen func(depth int) string
	gen = func(depth int) string {
		if depth <= 0 {
			return string(rune('a' + r.Intn(3)))
		}
		switch r.Intn(7) {
		case 0:
			return gen(depth-1) + gen(depth-1)
		case 1:
			return "(" + gen(depth-1) + "|" + gen(depth-1) + ")"
		case 2:
			return "(" + gen(depth-1) + ")*"
		case 3:
			return "(" + gen(depth-1) + ")?"
		case 4:
			return "(" + gen(depth-1) + ")+"
		case 5:
			return "."
		default:
			return string(rune('a' + r.Intn(3)))
		}
	}
	f := func() bool {
		pat := gen(3)
		mine, err := Compile(pat)
		if err != nil {
			return false
		}
		std, err := regexp.Compile(pat)
		if err != nil {
			return true // pattern outside common subset; skip
		}
		for i := 0; i < 15; i++ {
			n := r.Intn(8)
			var sb strings.Builder
			for j := 0; j < n; j++ {
				sb.WriteByte(byte('a' + r.Intn(3)))
			}
			s := sb.String()
			if mine.MatchString(s) != std.MatchString(s) {
				t.Logf("pattern %q input %q: mine=%v std=%v", pat, s, mine.MatchString(s), std.MatchString(s))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatchSuffixPattern(b *testing.B) {
	re := MustCompile(`^.*/keyword$`)
	path := "/site/regions/africa/item/description/parlist/listitem/text/keyword"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !re.MatchString(path) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkMatchNFAPattern(b *testing.B) {
	re := MustCompile(`^/site/regions/[^/]+/item/(.+/)?keyword$`)
	path := "/site/regions/africa/item/description/parlist/listitem/text/keyword"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !re.MatchString(path) {
			b.Fatal("no match")
		}
	}
}
