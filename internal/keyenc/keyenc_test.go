package keyenc

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestIntOrderPreserved(t *testing.T) {
	vals := []int64{-1 << 62, -100, -1, 0, 1, 7, 100, 1 << 40, 1<<62 + 3}
	var prev []byte
	for i, v := range vals {
		enc := AppendInt(nil, v)
		if i > 0 && bytes.Compare(prev, enc) >= 0 {
			t.Errorf("encoding of %d not greater than predecessor", v)
		}
		got, rest, err := DecodeNext(enc)
		if err != nil || len(rest) != 0 || got.(int64) != v {
			t.Errorf("round trip %d -> %v (err %v)", v, got, err)
		}
		prev = enc
	}
}

func TestQuickIntOrder(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := AppendInt(nil, a), AppendInt(nil, b)
		cmp := bytes.Compare(ea, eb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBytesOrder(t *testing.T) {
	f := func(a, b []byte) bool {
		ea, eb := AppendBytes(nil, a), AppendBytes(nil, b)
		return sign(bytes.Compare(ea, eb)) == sign(bytes.Compare(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTextRoundTrip(t *testing.T) {
	f := func(s string) bool {
		got, rest, err := DecodeNext(AppendText(nil, s))
		return err == nil && len(rest) == 0 && got.(string) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(v []byte) bool {
		got, rest, err := DecodeNext(AppendBytes(nil, v))
		if err != nil || len(rest) != 0 {
			return false
		}
		b := got.([]byte)
		return bytes.Equal(b, v) || (len(v) == 0 && len(b) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}

func TestNullSortsFirst(t *testing.T) {
	null := AppendNull(nil)
	for _, enc := range [][]byte{
		AppendInt(nil, -1<<62),
		AppendBytes(nil, nil),
		AppendText(nil, ""),
	} {
		if bytes.Compare(null, enc) >= 0 {
			t.Errorf("NULL does not sort before %x", enc)
		}
	}
}

func TestCompositeKeysComponentwise(t *testing.T) {
	// (b"ab", 2) must sort before (b"ab", 10) and before (b"abc", 0).
	k1 := AppendInt(AppendBytes(nil, []byte("ab")), 2)
	k2 := AppendInt(AppendBytes(nil, []byte("ab")), 10)
	k3 := AppendInt(AppendBytes(nil, []byte("abc")), 0)
	if !(bytes.Compare(k1, k2) < 0 && bytes.Compare(k2, k3) < 0) {
		t.Errorf("composite ordering broken: %x %x %x", k1, k2, k3)
	}
}

func TestZeroBytesEscaping(t *testing.T) {
	// b"a\x00" vs b"a\x00\x00" vs b"a\x01": escaping must keep order.
	vals := [][]byte{{'a'}, {'a', 0}, {'a', 0, 0}, {'a', 0, 1}, {'a', 1}}
	encs := make([][]byte, len(vals))
	for i, v := range vals {
		encs[i] = AppendBytes(nil, v)
	}
	if !sort.SliceIsSorted(encs, func(i, j int) bool { return bytes.Compare(encs[i], encs[j]) < 0 }) {
		t.Error("escaped encodings not in value order")
	}
	for i, v := range vals {
		got, _, err := DecodeNext(encs[i])
		if err != nil || !bytes.Equal(got.([]byte), v) {
			t.Errorf("round trip %x -> %v (%v)", v, got, err)
		}
	}
}

func TestBytesPrefixBound(t *testing.T) {
	// A prefix bound must be <= every full key whose component extends it.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		p := randBytes(r, 4)
		ext := append(append([]byte{}, p...), randBytes(r, 3)...)
		bound := AppendBytesPrefix(nil, p)
		full := AppendBytes(nil, ext)
		if bytes.Compare(bound, full) > 0 {
			t.Fatalf("prefix bound %x > full key %x", bound, full)
		}
	}
}

func randBytes(r *rand.Rand, n int) []byte {
	out := make([]byte, r.Intn(n+1))
	for i := range out {
		out[i] = byte(r.Intn(4)) // skew toward 0x00 to exercise escaping
	}
	return out
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{tagInt, 1, 2},
		{tagBytes, 'a'},
		{tagBytes, 0x00, 0x42},
		{0x77},
	}
	for _, k := range bad {
		if _, _, err := DecodeNext(k); err == nil {
			t.Errorf("DecodeNext(%x) should fail", k)
		}
	}
}

func TestMultiComponentDecode(t *testing.T) {
	key := AppendNull(AppendText(AppendInt(nil, 42), "hi"))
	v1, rest, err := DecodeNext(key)
	if err != nil || v1.(int64) != 42 {
		t.Fatalf("first component: %v %v", v1, err)
	}
	v2, rest, err := DecodeNext(rest)
	if err != nil || v2.(string) != "hi" {
		t.Fatalf("second component: %v %v", v2, err)
	}
	v3, rest, err := DecodeNext(rest)
	if err != nil || v3 != nil || len(rest) != 0 {
		t.Fatalf("third component: %v %v %v", v3, rest, err)
	}
	if !reflect.DeepEqual(rest, []byte{}) && rest != nil {
		t.Fatalf("trailing bytes: %x", rest)
	}
}
