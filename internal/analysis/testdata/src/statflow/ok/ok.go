// Outside internal/engine the fraction rule is silent, and writes to
// non-synopsis types with statistic-like fields are not flagged.
package ok

type counters struct {
	count int64
	rows  int64
}

func bump(c *counters) float64 {
	c.count++
	c.rows = 7
	return 0.25 // not a planner file: fine
}
