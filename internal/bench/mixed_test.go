package bench

import (
	"strings"
	"testing"
)

// TestMixedExperiment runs the mixed read/write experiment at a tiny
// scale: oracle verification on the quiet store, a table row per
// query with all three latency columns populated, and one JSON record
// per (query, phase) through the sink. Run under -race in crash-smoke.
func TestMixedExperiment(t *testing.T) {
	w, err := NewXMark(0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	var records []Record
	o := Opts{Reps: 2, Verify: true, Sink: func(r Record) { records = append(records, r) }}
	tb, err := Mixed(w, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(w.Queries) {
		t.Fatalf("table has %d rows, want one per query (%d)", len(tb.Rows), len(w.Queries))
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Headers) {
			t.Fatalf("row %v has %d cells, headers have %d", row, len(row), len(tb.Headers))
		}
		for i, cell := range row[2:5] {
			if cell == "ERR" || cell == "N/A" || cell == "" {
				t.Errorf("query %s column %q: cell %q", row[0], tb.Headers[2+i], cell)
			}
		}
	}
	if want := 3 * len(w.Queries); len(records) != want {
		t.Fatalf("sink got %d records, want %d (3 phases per query)", len(records), want)
	}
	phases := map[string]int{}
	for _, r := range records {
		if r.Experiment != "mixed" {
			t.Fatalf("record experiment = %q, want mixed", r.Experiment)
		}
		if r.NsPerOp <= 0 {
			t.Errorf("%s/%s: ns_per_op = %d", r.QueryID, r.System, r.NsPerOp)
		}
		phases[r.System]++
	}
	for _, sys := range []string{"ppf-quiet", "ppf-writer", "ppf-quiet-after"} {
		if phases[sys] != len(w.Queries) {
			t.Errorf("phase %s has %d records, want %d", sys, phases[sys], len(w.Queries))
		}
	}
	// The writer must actually have loaded documents concurrently.
	if !strings.Contains(tb.Title, "docs at end") || strings.Contains(tb.Title, "(1 docs at end)") {
		t.Errorf("title does not report writer progress: %q", tb.Title)
	}
}
