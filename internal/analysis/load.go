package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("repro/internal/engine", or a testdata pseudo-path)
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// ldr is the loader that produced this package. Module-internal
	// imports were type-checked from source through the same loader,
	// so their ASTs are already cached there — Pass.Dep exposes them
	// to interprocedural analyzers without a second load.
	ldr *Loader
}

// The loader shares one FileSet and one source-importer across every
// Loader in the process so the standard library is parsed and
// type-checked at most once per run (the source importer caches
// internally, keyed by this FileSet). loadMu serializes all loading;
// neither the importer nor the maps are safe for concurrent use.
var (
	loadMu     sync.Mutex
	sharedFset = token.NewFileSet()
	stdSource  = importer.ForCompiler(sharedFset, "source", nil)
)

// A Loader type-checks packages of one module with the standard
// library resolved from GOROOT source. It needs no network, no
// GOPATH, and no export data — only the go toolchain's source tree.
type Loader struct {
	ModuleRoot string // absolute directory containing go.mod
	ModulePath string // module path declared in go.mod

	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import cycle detection
	srcDirs []string            // extra GOPATH-style roots (testdata/src)
}

// AddSrcDir registers a GOPATH-style source root: an import path that
// is neither std nor module-internal resolves to <dir>/<path> if that
// directory holds Go files. analysistest uses this so one testdata
// package can import another (e.g. a miniature internal/synopsis that
// the statflow violation cases write to).
func (l *Loader) AddSrcDir(dir string) {
	l.srcDirs = append(l.srcDirs, dir)
}

// NewLoader finds the enclosing module of dir (walking up to go.mod)
// and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// Load type-checks the package with the given module-internal import
// path (or returns the cached result).
func (l *Loader) Load(importPath string) (*Package, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	return l.load(importPath)
}

// LoadDir type-checks the package in dir under the given (possibly
// synthetic) import path. Used by analysistest for testdata trees
// that live outside the module's package space.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	return l.check(dir, importPath, true)
}

// Dirs resolves patterns to the package directories they denote
// without loading anything. A pattern is a directory (absolute or
// relative to the loader's module root), optionally ending in "/..."
// for a recursive walk. Directories named testdata, hidden
// directories, and directories with no non-test Go files are skipped.
func (l *Loader) Dirs(patterns ...string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = l.ModuleRoot
			}
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.ModuleRoot, pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	out := dirs[:0]
	for _, dir := range dirs {
		if l.hasGoFiles(dir) {
			out = append(out, dir)
		}
	}
	return out, nil
}

// ImportPath maps a package directory inside the module to its import
// path.
func (l *Loader) ImportPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// Packages loads every package matched by the patterns (see Dirs for
// the pattern syntax).
func (l *Loader) Packages(patterns ...string) ([]*Package, error) {
	dirs, err := l.Dirs(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		importPath, err := l.ImportPath(dir)
		if err != nil {
			return nil, err
		}
		p, err := l.Load(importPath)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func (l *Loader) hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// load resolves a module-internal import path to its directory and
// type-checks it. Callers hold loadMu.
func (l *Loader) load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	return l.check(dir, importPath, false)
}

// check parses and type-checks the single package in dir. Test files
// are included only for testdata packages (includeTests), where the
// want-comments live in ordinary files anyway; the repository's
// in-package _test.go files are outside xvet's scope (they would pull
// the testing universe into every load).
func (l *Loader) check(dir, importPath string, includeTests bool) (*Package, error) {
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		n := f.Name.Name
		if strings.HasSuffix(n, "_test") {
			continue // external test package: out of scope
		}
		if pkgName == "" {
			pkgName = n
		} else if n != pkgName {
			return nil, fmt.Errorf("analysis: %s: multiple packages %s and %s", dir, pkgName, n)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, sharedFset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %v", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", importPath, err)
	}
	p := &Package{Path: importPath, Dir: dir, Fset: sharedFset, Files: files, Types: tpkg, Info: info, ldr: l}
	l.pkgs[importPath] = p
	return p, nil
}

// loaded returns the already-type-checked package with the given
// import path, or nil. It never triggers a load.
func (l *Loader) loaded(importPath string) *Package {
	loadMu.Lock()
	defer loadMu.Unlock()
	return l.pkgs[importPath]
}

// loaderImporter routes module-internal imports back through the
// loader and everything else to the GOROOT source importer.
type loaderImporter Loader

func (i *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(i)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	for _, src := range l.srcDirs {
		dir := filepath.Join(src, filepath.FromSlash(path))
		if !l.hasGoFiles(dir) {
			continue
		}
		if p, ok := l.pkgs[path]; ok {
			return p.Types, nil
		}
		if l.loading[path] {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		p, err := l.check(dir, path, true)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return stdSource.(types.ImporterFrom).ImportFrom(path, l.ModuleRoot, 0)
}
