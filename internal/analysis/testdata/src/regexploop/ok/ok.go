// Negative cases for the regexploop analyzer: hoisted compilation —
// at package level or once before the loop — is the sanctioned shape.
package ok

import (
	"regexp"

	"repro/internal/pathre"
)

var hoisted = regexp.MustCompile(`^[0-9]+$`)

func hoistedBeforeLoop(pat string, rows []string) (int, error) {
	re, err := pathre.Compile(pat)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, r := range rows {
		if re.MatchString(r) || hoisted.MatchString(r) {
			n++
		}
	}
	return n, nil
}

func dfaHoistedBeforeLoop(pat string, rows []string) (int, error) {
	re, err := pathre.Compile(pat)
	if err != nil {
		return 0, err
	}
	d, err := pathre.CompileDFA(re)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, r := range rows {
		if d.MatchString(r) {
			n++
		}
	}
	return n, nil
}
