package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/sqlast"
)

// scanOrder lists the alias of every scan operator in execution
// order — the join order the plan actually committed to.
func scanOrder(reports []OpReport) []string {
	var order []string
	for _, r := range reports {
		if r.Kind != "scan" {
			continue
		}
		// Labels read "scan <alias>: <access path>".
		rest := strings.TrimPrefix(r.Label, "scan ")
		if i := strings.IndexByte(rest, ':'); i >= 0 {
			rest = rest[:i]
		}
		order = append(order, rest)
	}
	return order
}

func sortedRows(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestAdaptiveReplanOnSkew builds the situation the feedback loop
// exists for: a heavy-hitter value hidden past the synopsis histogram
// cap, so the planner's equality estimate (overflow mass spread
// uniformly) is off by three orders of magnitude and it leads the join
// with the "selective" skewed table. The first execution's OpStats
// expose the mis-estimate; the next plan-cache hit must re-plan with
// the observed cardinality, flip the join order, return identical
// results, and settle (no further re-plans once estimates match
// observations).
func TestAdaptiveReplanOnSkew(t *testing.T) {
	db := NewDB()
	a, err := db.CreateTable("A", Column{"j", TInt}, Column{"k", TInt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.CreateIndex("A_j", "j"); err != nil {
		t.Fatal(err)
	}
	b, err := db.CreateTable("B", Column{"j", TInt}, Column{"tag", TText})
	if err != nil {
		t.Fatal(err)
	}

	// Fill A's k-histogram to HistCap with singletons, then push 1000
	// more singletons and 1000 copies of k=5000 into the overflow: the
	// synopsis estimates k=5000 at other/outside ≈ 1 row while the table
	// holds 1000. j is unique per row except that the heavy rows carry
	// j = 0..999, overlapping B's j = 0..9.
	var rows [][]Value
	for i := 0; i < 1024; i++ {
		rows = append(rows, []Value{NewInt(int64(10000 + i)), NewInt(int64(i))})
	}
	for i := 0; i < 1000; i++ {
		rows = append(rows, []Value{NewInt(int64(20000 + i)), NewInt(int64(2000 + i))})
	}
	for i := 0; i < 1000; i++ {
		rows = append(rows, []Value{NewInt(int64(i)), NewInt(5000)})
	}
	if _, err := a.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	var brows [][]Value
	for i := 0; i < 10; i++ {
		brows = append(brows, []Value{NewInt(int64(i)), NewText(fmt.Sprintf("b%d", i))})
	}
	if _, err := b.InsertBatch(brows); err != nil {
		t.Fatal(err)
	}

	st, err := sqlast.Parse("SELECT A.j, B.tag FROM A, B WHERE A.k = 5000 AND A.j = B.j")
	if err != nil {
		t.Fatal(err)
	}

	rep1, res1, err := db.AnalyzeReport(st, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.AdaptiveReplans(); got != 0 {
		t.Fatalf("replans after first execution = %d, want 0", got)
	}
	order1 := scanOrder(rep1)
	if len(order1) != 2 || order1[0] != "A" {
		t.Fatalf("initial plan should lead with the mis-estimated table A, got %v", order1)
	}

	rep2, res2, err := db.AnalyzeReport(st, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.AdaptiveReplans(); got != 1 {
		t.Fatalf("replans after second execution = %d, want 1", got)
	}
	order2 := scanOrder(rep2)
	if len(order2) != 2 || order2[0] != "B" {
		t.Fatalf("re-planned join order = %v, want B leading", order2)
	}
	if g, w := sortedRows(res2), sortedRows(res1); strings.Join(g, ";") != strings.Join(w, ";") {
		t.Fatalf("re-planned results differ:\n got %v\nwant %v", g, w)
	}
	if len(res1.Rows) != 10 {
		t.Fatalf("query returned %d rows, want 10", len(res1.Rows))
	}

	// Third execution: the re-planned estimates now match observations,
	// so the plan must stand (no flapping) and its q-errors collapse.
	rep3, res3, err := db.AnalyzeReport(st, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.AdaptiveReplans(); got != 1 {
		t.Fatalf("replans after third execution = %d, want 1 (plan must settle)", got)
	}
	if got := scanOrder(rep3); strings.Join(got, ">") != strings.Join(order2, ">") {
		t.Fatalf("settled plan changed shape: %v then %v", order2, got)
	}
	for _, r := range rep3 {
		if r.HasEst && r.Loops > 0 && r.QError > replanQErrorThreshold {
			t.Errorf("settled plan still mis-estimates %q: q-error %.2f", r.Label, r.QError)
		}
	}
	if g, w := sortedRows(res3), sortedRows(res1); strings.Join(g, ";") != strings.Join(w, ";") {
		t.Fatalf("settled results differ:\n got %v\nwant %v", g, w)
	}
}
