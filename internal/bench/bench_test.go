package bench

import (
	"testing"
	"time"
)

// TestAllSystemsAgreeOnXMark is the central integration test: every
// benchmark query must return the oracle's node set on every system.
func TestAllSystemsAgreeOnXMark(t *testing.T) {
	scale := 0.05
	if testing.Short() {
		scale = 0.02
	}
	w, err := NewXMark(scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		n, err := w.Verify(q)
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		t.Logf("%s: %d nodes", q.ID, n)
	}
}

func TestAllSystemsAgreeOnDBLP(t *testing.T) {
	scale := 0.05
	if testing.Short() {
		scale = 0.02
	}
	w, err := NewDBLP(scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		n, err := w.Verify(q)
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		t.Logf("%s: %d nodes", q.ID, n)
	}
}

func TestSupportedMatrix(t *testing.T) {
	w, err := NewXMark(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Supported(Commercial, "Q1") {
		t.Error("commercial stand-in should report N/A for Q1, as in the paper")
	}
	if !w.Supported(Commercial, "Q23") || !w.Supported(Commercial, "QA") {
		t.Error("commercial stand-in should support Q23 and QA")
	}
	if !w.Supported(PPF, "Q1") {
		t.Error("PPF supports everything")
	}
	d, err := NewDBLP(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Supported(Commercial, "QD1") {
		t.Error("DBLP workload has no commercial restriction in the paper's table")
	}
}

func TestMeasure(t *testing.T) {
	w, err := NewXMark(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := w.Query("Q1")
	m := w.Measure(PPF, q, 3, 0)
	if m.ErrorMsg != "" || m.Nodes == 0 || m.Avg <= 0 {
		t.Fatalf("measurement = %+v", m)
	}
	if m.Cell() == "N/A" || m.Cell() == "ERR" {
		t.Fatalf("cell = %s", m.Cell())
	}
	// Unsupported -> skipped.
	m = w.Measure(Commercial, q, 1, 0)
	if !m.Skipped || m.Cell() != "N/A" {
		t.Fatalf("commercial Q1 = %+v", m)
	}
	// Tiny budget forces a timeout marker.
	m = w.Measure(Accel, q, 1, time.Nanosecond)
	if !m.Timeout || m.Cell() != "~" {
		t.Fatalf("timeout cell = %+v", m)
	}
}

func TestQueryLookup(t *testing.T) {
	w, err := NewXMark(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Query("Q1"); !ok {
		t.Error("Q1 missing")
	}
	if _, ok := w.Query("nope"); ok {
		t.Error("bogus query found")
	}
}
