package engine

import (
	"fmt"
	"testing"

	"repro/internal/sqlast"
)

// Cardinality estimates are a function of the data (the snapshot's
// synopsis) and of observed per-binding cardinalities — never of how
// a plan happens to be executed. If parallel morsels or small batches
// skewed the OpStats a plan feeds back, the same workload would settle
// on different plans per execution mode and EXPLAIN would stop being
// reproducible. This test runs the same statements to a settled state
// under serial, parallel, and several batch capacities on identically
// seeded databases and requires the final plans — operator labels and
// est_rows included — to agree exactly.
func TestEstimateDeterminismAcrossExecModes(t *testing.T) {
	queries := []string{
		"SELECT a.id FROM n a WHERE a.val >= 2",
		"SELECT DISTINCT a.tag FROM n a WHERE EXISTS " +
			"(SELECT b.id FROM n b WHERE b.par = a.id) ORDER BY a.tag DESC",
		"SELECT a.id, b.id FROM n a, n b WHERE a.val = 1 AND b.par = a.id",
	}
	modes := []struct {
		name string
		opts ExecOptions
	}{
		{"serial", ExecOptions{}},
		{"parallel8", ExecOptions{Parallelism: 8}},
		{"batch1", ExecOptions{BatchSize: 1}},
		{"batch7", ExecOptions{BatchSize: 7}},
		{"parallel4batch3", ExecOptions{Parallelism: 4, BatchSize: 3}},
	}

	// settledPlan executes st under opts until the plan stops adapting
	// (bounded by maxAdaptiveReplans), then renders its estimates.
	settledPlan := func(t *testing.T, db *DB, st sqlast.Statement, opts ExecOptions) string {
		t.Helper()
		var out string
		for i := 0; i <= maxAdaptiveReplans+1; i++ {
			reports, _, err := db.AnalyzeReport(st, opts)
			if err != nil {
				t.Fatal(err)
			}
			out = ""
			for _, r := range reports {
				if r.HasEst {
					out += fmt.Sprintf("%s est_rows=%.3f\n", r.Label, r.EstRows)
				} else {
					out += r.Label + "\n"
				}
			}
		}
		return out
	}

	for _, sql := range queries {
		st, err := sqlast.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		var want string
		for _, m := range modes {
			// A fresh identically-seeded DB per mode: plans, caches, and
			// feedback state start equal, so any divergence below is the
			// execution mode leaking into estimation.
			db, _ := buildPair(t, 17, 400)
			got := settledPlan(t, db, st, m.opts)
			if m.name == modes[0].name {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: settled plan under %s differs from serial:\n%s\nwant:\n%s",
					sql, m.name, got, want)
			}
		}
	}
}
