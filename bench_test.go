// Package repro's top-level benchmarks regenerate every table and
// figure of the paper's evaluation (Section 5, Appendix C) as
// testing.B benchmarks. Each benchmark iteration executes the full
// query once on the pre-loaded workload; b.ReportMetric exposes the
// result cardinality so runs can be compared against the paper's
// "# of nodes" columns.
//
// Scales are reduced relative to cmd/xbench so that 'go test -bench=.'
// finishes in minutes; run 'go run ./cmd/xbench -scale 1' (and
// -experiment appc-large for the 10x document) for the full-size
// reproduction recorded in EXPERIMENTS.md.
package repro

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// benchScale keeps 'go test -bench=.' tractable; see EXPERIMENTS.md
// for full-scale numbers.
const (
	benchScaleSmall = 0.1
	benchScaleLarge = 1.0
	benchScaleDBLP  = 0.1
)

var (
	onceSmall, onceLarge, onceDBLP sync.Once
	wSmall, wLarge, wDBLP          *bench.Workload
)

func xmarkSmall(b *testing.B) *bench.Workload {
	onceSmall.Do(func() {
		var err error
		if wSmall, err = bench.NewXMark(benchScaleSmall, 42); err != nil {
			b.Fatal(err)
		}
	})
	return wSmall
}

func xmarkLarge(b *testing.B) *bench.Workload {
	onceLarge.Do(func() {
		var err error
		if wLarge, err = bench.NewXMark(benchScaleLarge, 42); err != nil {
			b.Fatal(err)
		}
	})
	return wLarge
}

func dblpWorkload(b *testing.B) *bench.Workload {
	onceDBLP.Do(func() {
		var err error
		if wDBLP, err = bench.NewDBLP(benchScaleDBLP, 42); err != nil {
			b.Fatal(err)
		}
	})
	return wDBLP
}

// benchQuery runs one (system, query) cell.
func benchQuery(b *testing.B, w *bench.Workload, sys bench.System, q bench.Query) {
	b.Helper()
	if !w.Supported(sys, q.ID) {
		b.Skipf("%s does not support %s (N/A in the paper)", sys, q.ID)
	}
	var nodes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, err := w.Run(sys, q)
		if err != nil {
			b.Fatal(err)
		}
		nodes = len(ids)
	}
	b.ReportMetric(float64(nodes), "nodes")
}

// BenchmarkFig3 reproduces Figure 3: schema-aware vs Edge-like PPF on
// the XMark and DBLP query sets.
func BenchmarkFig3(b *testing.B) {
	for _, load := range []struct {
		name string
		w    func(*testing.B) *bench.Workload
	}{{"XMark", xmarkSmall}, {"DBLP", dblpWorkload}} {
		w := load.w(b)
		for _, q := range w.Queries {
			for _, sys := range []bench.System{bench.PPF, bench.EdgePPF} {
				b.Run(fmt.Sprintf("%s/%s/%s", load.name, q.ID, sysTag(sys)), func(b *testing.B) {
					benchQuery(b, w, sys, q)
				})
			}
		}
	}
}

// BenchmarkAppCSmall reproduces the left half of Appendix C (Figure
// 4): all five systems on the small XMark document.
func BenchmarkAppCSmall(b *testing.B) {
	w := xmarkSmall(b)
	for _, q := range w.Queries {
		for _, sys := range bench.Systems {
			b.Run(fmt.Sprintf("%s/%s", q.ID, sysTag(sys)), func(b *testing.B) {
				benchQuery(b, w, sys, q)
			})
		}
	}
}

// BenchmarkAppCSmallParallel runs the SQL-based systems of Appendix C
// with the engine's morsel executor at GOMAXPROCS workers, for
// comparison against the serial BenchmarkAppCSmall cells. The
// structural-join-heavy queries (Q6, Q7, QA, QD2, QD5) are where the
// driving-table fan-out is widest. Result node-id sets are asserted
// against the serial run each iteration's setup.
func BenchmarkAppCSmallParallel(b *testing.B) {
	w := xmarkSmall(b)
	workers := runtime.GOMAXPROCS(0)
	for _, q := range w.Queries {
		for _, sys := range []bench.System{bench.PPF, bench.EdgePPF, bench.Accel} {
			sys := sys
			b.Run(fmt.Sprintf("%s/%s", q.ID, sysTag(sys)), func(b *testing.B) {
				want, err := w.Run(sys, q)
				if err != nil {
					b.Fatal(err)
				}
				got, err := w.RunParallel(sys, q, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(got) != len(want) {
					b.Fatalf("parallel returned %d ids, serial %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						b.Fatalf("id %d differs: %d vs %d", i, got[i], want[i])
					}
				}
				var nodes int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ids, err := w.RunParallel(sys, q, workers)
					if err != nil {
						b.Fatal(err)
					}
					nodes = len(ids)
				}
				b.ReportMetric(float64(nodes), "nodes")
			})
		}
	}
}

// BenchmarkAppCLarge reproduces the large-document columns of
// Appendix C (10x the small scale).
func BenchmarkAppCLarge(b *testing.B) {
	if testing.Short() {
		b.Skip("large workload skipped in -short mode")
	}
	w := xmarkLarge(b)
	for _, q := range w.Queries {
		for _, sys := range bench.Systems {
			b.Run(fmt.Sprintf("%s/%s", q.ID, sysTag(sys)), func(b *testing.B) {
				benchQuery(b, w, sys, q)
			})
		}
	}
}

// BenchmarkAppCDBLP reproduces the DBLP table of Appendix C.
func BenchmarkAppCDBLP(b *testing.B) {
	w := dblpWorkload(b)
	for _, q := range w.Queries {
		for _, sys := range bench.Systems {
			b.Run(fmt.Sprintf("%s/%s", q.ID, sysTag(sys)), func(b *testing.B) {
				benchQuery(b, w, sys, q)
			})
		}
	}
}

// BenchmarkAblatePathFilter measures the Section 4.5 optimization:
// the same PPF plans with path-filter omission on and off.
func BenchmarkAblatePathFilter(b *testing.B) {
	w := xmarkSmall(b)
	off := core.DefaultOptions()
	off.PathFilterOmission = false
	trOff := w.NewPPFTranslator(&off)
	for _, q := range w.Queries {
		for _, variant := range []struct {
			name string
			tr   *core.Translator
		}{{"on", w.NewPPFTranslator(nil)}, {"off", trOff}} {
			tr := variant.tr
			b.Run(fmt.Sprintf("%s/omission-%s", q.ID, variant.name), func(b *testing.B) {
				trans, err := tr.Translate(q.XPath)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.Aware.DB.Run(trans.Stmt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblateFKJoin measures the Section 4.2 choice of FK
// equijoins vs Dewey comparisons for child/parent steps.
func BenchmarkAblateFKJoin(b *testing.B) {
	w := xmarkSmall(b)
	off := core.DefaultOptions()
	off.FKChildParent = false
	trOff := w.NewPPFTranslator(&off)
	for _, q := range w.Queries {
		for _, variant := range []struct {
			name string
			tr   *core.Translator
		}{{"fk", w.NewPPFTranslator(nil)}, {"dewey", trOff}} {
			tr := variant.tr
			b.Run(fmt.Sprintf("%s/%s", q.ID, variant.name), func(b *testing.B) {
				trans, err := tr.Translate(q.XPath)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.Aware.DB.Run(trans.Stmt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTranslate measures translation cost alone (the paper's
// "low implementation complexity" claim includes cheap compilation).
func BenchmarkTranslate(b *testing.B) {
	w := xmarkSmall(b)
	tr := w.NewPPFTranslator(nil)
	for _, q := range w.Queries {
		b.Run(q.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tr.Translate(q.XPath); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sysTag(sys bench.System) string {
	switch sys {
	case bench.PPF:
		return "PPF"
	case bench.EdgePPF:
		return "EdgePPF"
	case bench.Staircase:
		return "Staircase"
	case bench.Commercial:
		return "Commercial"
	case bench.Accel:
		return "Accel"
	}
	return string(sys)
}

// TestBenchmarkWorkloadsVerify keeps the benchmark workloads honest:
// every query must agree with the oracle at benchmark scale.
func TestBenchmarkWorkloadsVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("verification at benchmark scale skipped in -short mode")
	}
	w, err := bench.NewXMark(benchScaleSmall, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		if _, err := w.Verify(q); err != nil {
			t.Error(err)
		}
	}
	d, err := bench.NewDBLP(benchScaleDBLP, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range d.Queries {
		if _, err := d.Verify(q); err != nil {
			t.Error(err)
		}
	}
}
