package xpath

import (
	"fmt"
	"strconv"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokSlash
	tokDoubleSlash
	tokName     // NCName
	tokStar     // '*' as wildcard
	tokAt       // '@'
	tokAxis     // axis name followed by '::'
	tokLBracket // '['
	tokRBracket // ']'
	tokLParen   // '('
	tokRParen   // ')'
	tokString   // 'literal' or "literal"
	tokNumber   // numeric literal
	tokOperator // = != < <= > >= + - | , and or div mod and '*' as multiply
	tokDot      // '.'
	tokDotDot   // '..'
	tokFunc     // NCName followed by '(' (function call or kind test)
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of expression"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenizes an XPath expression, applying the XPath 1.0
// disambiguation rules: a '*' (and the names and/or/div/mod) is an
// operator when the preceding token permits an operator to follow;
// an NCName directly followed by '(' is a function name, and one
// followed by '::' is an axis name.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.tokens = append(l.tokens, tok)
		if tok.kind == tokEOF {
			return l.tokens, nil
		}
	}
}

// operatorMayFollow reports whether, per the XPath disambiguation
// rule, the previous token allows the next '*' or name to be read as
// an operator.
func (l *lexer) operatorMayFollow() bool {
	if len(l.tokens) == 0 {
		return false
	}
	switch prev := l.tokens[len(l.tokens)-1]; prev.kind {
	case tokAt, tokAxis, tokLParen, tokLBracket, tokSlash, tokDoubleSlash, tokOperator, tokFunc:
		return false
	default:
		return true
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '/':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '/' {
			l.pos++
			return token{kind: tokDoubleSlash, text: "//", pos: start}, nil
		}
		return token{kind: tokSlash, text: "/", pos: start}, nil
	case c == '[':
		l.pos++
		return token{kind: tokLBracket, text: "[", pos: start}, nil
	case c == ']':
		l.pos++
		return token{kind: tokRBracket, text: "]", pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '@':
		l.pos++
		return token{kind: tokAt, text: "@", pos: start}, nil
	case c == '|' || c == '+' || c == '-' || c == ',':
		l.pos++
		return token{kind: tokOperator, text: string(c), pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOperator, text: "=", pos: start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOperator, text: "!=", pos: start}, nil
		}
		return token{}, fmt.Errorf("xpath: unexpected '!' at offset %d", l.pos)
	case c == '<' || c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOperator, text: l.src[start:l.pos], pos: start}, nil
		}
		return token{kind: tokOperator, text: string(c), pos: start}, nil
	case c == '*':
		l.pos++
		if l.operatorMayFollow() {
			return token{kind: tokOperator, text: "*", pos: start}, nil
		}
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '\'' || c == '"':
		quote := c
		end := strings.IndexByte(l.src[l.pos+1:], quote)
		if end < 0 {
			return token{}, fmt.Errorf("xpath: unterminated string literal at offset %d", l.pos)
		}
		text := l.src[l.pos+1 : l.pos+1+end]
		l.pos += end + 2
		return token{kind: tokString, text: text, pos: start}, nil
	case c == '.':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
			l.pos += 2
			return token{kind: tokDotDot, text: "..", pos: start}, nil
		}
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			return l.lexNumber()
		}
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case isDigit(c):
		return l.lexNumber()
	case isNameStart(c):
		for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
			l.pos++
		}
		name := l.src[start:l.pos]
		// Operator names, when an operator may appear here.
		switch name {
		case "and", "or", "div", "mod":
			if l.operatorMayFollow() {
				return token{kind: tokOperator, text: name, pos: start}, nil
			}
		}
		// Axis name?
		save := l.pos
		l.skipSpace()
		if strings.HasPrefix(l.src[l.pos:], "::") {
			if _, ok := axisByName[name]; !ok {
				return token{}, fmt.Errorf("xpath: unknown axis %q at offset %d", name, start)
			}
			l.pos += 2
			return token{kind: tokAxis, text: name, pos: start}, nil
		}
		// Function name?
		if l.pos < len(l.src) && l.src[l.pos] == '(' {
			return token{kind: tokFunc, text: name, pos: start}, nil
		}
		l.pos = save
		return token{kind: tokName, text: name, pos: start}, nil
	default:
		return token{}, fmt.Errorf("xpath: unexpected character %q at offset %d", c, l.pos)
	}
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		l.pos++
	}
	text := l.src[start:l.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, fmt.Errorf("xpath: bad number %q at offset %d", text, start)
	}
	return token{kind: tokNumber, text: text, num: v, pos: start}, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || isDigit(c) || c == '-' || c == '.'
}
