package core

import (
	"testing"
)

// TestPredicateVariantsAgainstOracle pushes through the rarer
// predicate translation paths on both translators.
func TestPredicateVariantsAgainstOracle(t *testing.T) {
	tr, st, ev := setup(t)
	trE, stE, _ := setupEdge(t)
	queries := []string{
		// flipped comparisons (constant on the left).
		"//F[2 = .]",
		"//F[2 != .]",
		"//F[3 <= .]",
		"//F[8 > .]",
		"//D[4 >= @x]",
		// static comparisons folding to true/false.
		"/A/B[2 >= 2]",
		"/A/B[2 > 2]",
		"/A/B['a' != 'b']",
		"/A/B[4 mod 3 = 1]",
		"/A/B[6 div 2 = 3]",
		// arithmetic with the constant on the left of the path.
		"//F[10 - . = 8]",
		"//F[14 div . = 2]",
		// count on the right side.
		"//E[2 = count(F)]",
		"//E[1 < count(F)]",
		// comparisons against attribute values on child paths.
		"//C[D/@x = 4]",
		"//C[D/@x != 5]",
		// predicates on union branches.
		"/A/B[C[D] | G]",
		// nested not.
		"/A/B[not(not(not(C)))]",
		// text() in a child path comparison.
		"//C[D/text() = 4]",
		// '.' existence (always true for bound rows).
		"//F[.]",
	}
	for _, q := range queries {
		check(t, tr, st, ev, q)
		checkEdge(t, trE, stE, ev, q)
	}
}

func TestUnsupportedPredicates(t *testing.T) {
	tr, _, _ := setup(t)
	trE, _, _ := setupEdge(t)
	for _, q := range []string{
		"//F[C * D = 4]",           // arithmetic over two paths
		"//F[. = position()]",      // position in comparison with path
		"//F[count(C) = count(D)]", // count vs count
		"//F[C + 1]",               // bare arithmetic predicate (positional)
	} {
		if _, err := tr.Translate(q); err == nil {
			t.Errorf("schema-aware Translate(%q) should fail", q)
		}
		if _, err := trE.Translate(q); err == nil {
			t.Errorf("edge Translate(%q) should fail", q)
		}
	}
}

func TestPredicatePathWithInternalPredicates(t *testing.T) {
	tr, st, ev := setup(t)
	trE, stE, _ := setupEdge(t)
	for _, q := range []string{
		"/A/B[C[E[F=2]]]",
		"/A/B[C[not(D)]/E]",
		"//B[C[D]/D]",
	} {
		check(t, tr, st, ev, q)
		checkEdge(t, trE, stE, ev, q)
	}
}

func TestJoinClauseVariants(t *testing.T) {
	tr, st, ev := setup(t)
	trE, stE, _ := setupEdge(t)
	for _, q := range []string{
		"//E[F != F]",
		"//E[F < F]",
		"//B[C/D = C/E/F]",
		"//B[C/D != C/E/F]",
		"//E[F = /A/B/C/D]",
		"//C[. = D]", // self vs child path
		"//C[D = .]", // flipped
	} {
		check(t, tr, st, ev, q)
		checkEdge(t, trE, stE, ev, q)
	}
}

func TestOpToXPathCoversAll(t *testing.T) {
	// Exercised via countComparison static folding: zero chains.
	tr, st, ev := setup(t)
	for _, q := range []string{
		"//E[count(Z) = 0]", // Z unknown -> zero chains -> static compare
		"//E[count(Z) != 0]",
		"//E[count(Z) < 1]",
		"//E[count(Z) <= 0]",
		"//E[count(Z) > 0]",
		"//E[count(Z) >= 1]",
	} {
		check(t, tr, st, ev, q)
	}
}
