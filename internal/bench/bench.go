// Package bench is the experiment harness that regenerates the
// paper's evaluation (Section 5): it loads each workload into every
// storage mapping, translates and executes each benchmark query under
// every system, verifies all systems against the native oracle, and
// measures execution times for the Figure 3 / Figure 4 / Appendix C
// reports.
package bench

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/dblp"
	"repro/internal/engine"
	"repro/internal/native"
	"repro/internal/schema"
	"repro/internal/shred"
	"repro/internal/sqlast"
	"repro/internal/staircase"
	"repro/internal/xmark"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// System identifies one of the evaluated systems.
type System string

const (
	// PPF is the paper's contribution: schema-aware PPF translation.
	PPF System = "PPF"
	// EdgePPF is the schema-oblivious PPF variant of Section 5.1.
	EdgePPF System = "Edge-like PPF"
	// Staircase is the columnar staircase-join evaluator standing in
	// for MonetDB/XQuery.
	Staircase System = "MonetDB-style staircase"
	// Commercial is the native DOM evaluator standing in for the
	// commercial RDBMS's built-in XPath processor.
	Commercial System = "Commercial (native)"
	// Accel is the XPath Accelerator implementation.
	Accel System = "XPath Accelerator"
)

// Systems lists all systems in the paper's reporting order.
var Systems = []System{PPF, EdgePPF, Staircase, Commercial, Accel}

// Query is one benchmark query.
type Query struct {
	ID    string
	XPath string
}

// Workload is a generated document loaded under every mapping.
type Workload struct {
	Name    string
	Doc     *xmltree.Document
	Schema  *schema.Schema
	Queries []Query

	// Parallelism is the worker count the SQL-based systems pass to
	// the engine's morsel executor (<= 1 means serial, the paper's
	// configuration).
	Parallelism int

	// MaxMemoryBytes and MaxRows are per-statement resource budgets
	// for the SQL-based systems (0 = unlimited, the paper's
	// configuration); exceeding one reports ERR for that cell.
	MaxMemoryBytes int64
	MaxRows        int64

	// BatchSize is the engine's row-id batch capacity for the
	// SQL-based systems (0 = the engine default). Results are
	// batch-size invariant; the knob exists for the batching
	// experiments.
	BatchSize int

	Aware  *shred.SchemaAwareStore
	Edge   *shred.EdgeStore
	AccelS *shred.AccelStore
	Stair  *staircase.Doc
	Oracle *native.Evaluator

	ppf     *core.Translator
	edgeTr  *core.EdgeTranslator
	accelTr *accel.Translator

	// commercialOnly lists the queries the paper's commercial system
	// supported; others report N/A for the Commercial column.
	commercialOnly map[string]bool
}

// NewXMark builds the XMark workload at the given scale (1 = the
// paper's small document, 10 = large).
func NewXMark(scale float64, seed int64) (*Workload, error) {
	doc, err := xmark.Generate(xmark.Config{Scale: scale, Seed: seed})
	if err != nil {
		return nil, err
	}
	qs := make([]Query, len(xmark.Queries))
	for i, q := range xmark.Queries {
		qs[i] = Query{ID: q.ID, XPath: q.XPath}
	}
	w := &Workload{
		Name:    fmt.Sprintf("xmark-%g", scale),
		Queries: qs,
		// Appendix C: the commercial system supports only Q23, Q24, QA.
		commercialOnly: map[string]bool{"Q23": true, "Q24": true, "QA": true},
	}
	return w, w.load(doc, xmark.Schema())
}

// NewDBLP builds the DBLP workload.
func NewDBLP(scale float64, seed int64) (*Workload, error) {
	doc, err := dblp.Generate(dblp.Config{Scale: scale, Seed: seed})
	if err != nil {
		return nil, err
	}
	qs := make([]Query, len(dblp.Queries))
	for i, q := range dblp.Queries {
		qs[i] = Query{ID: q.ID, XPath: q.XPath}
	}
	w := &Workload{Name: fmt.Sprintf("dblp-%g", scale), Queries: qs}
	return w, w.load(doc, dblp.Schema())
}

func (w *Workload) load(doc *xmltree.Document, s *schema.Schema) error {
	w.Doc = doc
	w.Schema = s
	var err error
	if w.Aware, err = shred.NewSchemaAware(s); err != nil {
		return err
	}
	if _, err = w.Aware.Load(doc); err != nil {
		return err
	}
	if w.Edge, err = shred.NewEdge(); err != nil {
		return err
	}
	if _, err = w.Edge.Load(doc); err != nil {
		return err
	}
	if w.AccelS, err = shred.NewAccel(); err != nil {
		return err
	}
	if _, err = w.AccelS.Load(doc); err != nil {
		return err
	}
	w.Stair = staircase.FromTree(doc)
	w.Oracle = native.New(doc)
	w.ppf = core.New(s, nil)
	w.edgeTr = core.NewEdge(nil)
	w.accelTr = accel.New()
	return nil
}

// NewPPFTranslator returns a fresh schema-aware translator with
// custom options (for the ablation experiments).
func (w *Workload) NewPPFTranslator(opts *core.Options) *core.Translator {
	return core.New(w.Schema, opts)
}

// Query returns the query with the given id.
func (w *Workload) Query(id string) (Query, bool) {
	for _, q := range w.Queries {
		if q.ID == id {
			return q, true
		}
	}
	return Query{}, false
}

// Supported reports whether a system runs a query in the paper's
// comparison (the commercial system supported only three queries).
func (w *Workload) Supported(sys System, queryID string) bool {
	if sys == Commercial && w.commercialOnly != nil {
		return w.commercialOnly[queryID]
	}
	return true
}

// Translate returns the SQL statement a SQL-based system uses for a
// query (nil for the non-SQL systems).
func (w *Workload) Translate(sys System, q Query) (sqlast.Statement, error) {
	switch sys {
	case PPF:
		tr, err := w.ppf.Translate(q.XPath)
		if err != nil {
			return nil, err
		}
		return tr.Stmt, nil
	case EdgePPF:
		tr, err := w.edgeTr.Translate(q.XPath)
		if err != nil {
			return nil, err
		}
		return tr.Stmt, nil
	case Accel:
		tr, err := w.accelTr.Translate(q.XPath)
		if err != nil {
			return nil, err
		}
		return tr.Stmt, nil
	}
	return nil, nil
}

// Run executes a query under a system, returning the selected element
// ids in document order.
func (w *Workload) Run(sys System, q Query) ([]int64, error) {
	return w.RunBudget(sys, q, 0)
}

// RunBudget is Run with a wall-clock budget for the SQL-based systems
// (0 means unlimited); engine.ErrTimeout reports an exceeded budget.
func (w *Workload) RunBudget(sys System, q Query, budget time.Duration) ([]int64, error) {
	switch sys {
	case PPF, EdgePPF, Accel:
		stmt, err := w.Translate(sys, q)
		if err != nil {
			return nil, err
		}
		return w.runStmt(sys, stmt, budget, w.Parallelism)
	case Staircase:
		return w.Stair.EvalString(q.XPath)
	case Commercial:
		return w.OracleIDs(q)
	}
	return nil, fmt.Errorf("bench: unknown system %q", sys)
}

// RunParallel is Run with an explicit engine worker count for the
// SQL-based systems, overriding the workload's Parallelism for this
// call; non-SQL systems run as usual.
func (w *Workload) RunParallel(sys System, q Query, workers int) ([]int64, error) {
	switch sys {
	case PPF, EdgePPF, Accel:
		stmt, err := w.Translate(sys, q)
		if err != nil {
			return nil, err
		}
		return w.runStmt(sys, stmt, 0, workers)
	}
	return w.Run(sys, q)
}

// dbFor returns the engine database a SQL-based system queries, nil
// for the non-SQL systems.
func (w *Workload) dbFor(sys System) *engine.DB {
	switch sys {
	case PPF:
		return w.Aware.DB
	case EdgePPF:
		return w.Edge.DB
	case Accel:
		return w.AccelS.DB
	}
	return nil
}

// runStmt executes a translated statement on a system's database
// (through the engine's plan cache) and extracts the node ids.
func (w *Workload) runStmt(sys System, stmt sqlast.Statement, budget time.Duration, workers int) ([]int64, error) {
	res, err := w.dbFor(sys).RunWithOptions(stmt, engine.ExecOptions{
		Timeout:        budget,
		Parallelism:    workers,
		MaxMemoryBytes: w.MaxMemoryBytes,
		MaxRows:        w.MaxRows,
		BatchSize:      w.BatchSize,
	})
	if err != nil {
		return nil, err
	}
	ids := make([]int64, len(res.Rows))
	for i, r := range res.Rows {
		ids[i] = r[0].I
	}
	return ids, nil
}

// OracleIDs evaluates a query with the native evaluator, mapping text
// nodes to their parent elements (the relational convention).
func (w *Workload) OracleIDs(q Query) ([]int64, error) {
	e, err := xpath.Parse(q.XPath)
	if err != nil {
		return nil, err
	}
	items, err := w.Oracle.Eval(e)
	if err != nil {
		return nil, err
	}
	seen := map[int64]bool{}
	ids := make([]int64, 0, len(items))
	for _, it := range items {
		id := it.Node.ID
		if !it.IsAttr() && it.Node.Kind == xmltree.Text {
			id = it.Node.Parent.ID
		}
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// Verify checks that every system returns the oracle's result for a
// query. It returns the result cardinality.
func (w *Workload) Verify(q Query) (int, error) {
	want, err := w.OracleIDs(q)
	if err != nil {
		return 0, fmt.Errorf("oracle %s: %w", q.ID, err)
	}
	for _, sys := range []System{PPF, EdgePPF, Staircase, Accel} {
		got, err := w.Run(sys, q)
		if err != nil {
			return 0, fmt.Errorf("%s on %s: %w", sys, q.ID, err)
		}
		if !equalIDs(got, want) {
			return 0, fmt.Errorf("%s on %s: %d ids, oracle has %d (first diff: %s)",
				sys, q.ID, len(got), len(want), firstDiff(got, want))
		}
	}
	return len(want), nil
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func firstDiff(a, b []int64) string {
	as := map[int64]bool{}
	for _, x := range a {
		as[x] = true
	}
	bs := map[int64]bool{}
	for _, x := range b {
		bs[x] = true
	}
	var extra, missing []int64
	for _, x := range a {
		if !bs[x] {
			extra = append(extra, x)
		}
	}
	for _, x := range b {
		if !as[x] {
			missing = append(missing, x)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	lim := func(xs []int64) []int64 {
		if len(xs) > 5 {
			return xs[:5]
		}
		return xs
	}
	return fmt.Sprintf("extra=%v missing=%v", lim(extra), lim(missing))
}

// Measurement is one timed cell of a result table.
type Measurement struct {
	System   System
	QueryID  string
	Nodes    int
	Avg      time.Duration
	Reps     int
	Timeout  bool
	Skipped  bool // system does not support the query
	ErrorMsg string
	// CacheHitRate is the fraction of this measurement's engine
	// executions that reused a cached plan (SQL-based systems only;
	// 0 otherwise). With the statement translated once up front, every
	// run after the first should hit.
	CacheHitRate float64
	// Joins is the translated statement's join-step count and
	// Operators the number of physical operators it lowers to
	// (SQL-based systems only; 0 otherwise).
	Joins     int
	Operators int
	// AllocsPerOp is the heap allocations per timed repetition
	// (cumulative Mallocs delta across the reps loop divided by the
	// repetitions — an approximate meter including harness overhead,
	// comparable across runs of the same harness).
	AllocsPerOp int64
	// BatchSize is the effective engine row-id batch capacity the
	// measurement ran with (SQL-based systems only; 0 otherwise).
	BatchSize int
}

// Measure times a query under a system: reps repetitions (after one
// warm-up that also yields the cardinality), stopping early if a
// single run exceeds budget (reported as a timeout, the paper's "~").
// SQL-based systems are translated once and re-planned only when the
// engine's plan cache misses.
func (w *Workload) Measure(sys System, q Query, reps int, budget time.Duration) (m Measurement) {
	m = Measurement{System: sys, QueryID: q.ID, Reps: reps}
	if !w.Supported(sys, q.ID) {
		m.Skipped = true
		return m
	}
	db := w.dbFor(sys)
	var stmt sqlast.Statement
	if db != nil {
		m.BatchSize = w.BatchSize
		if m.BatchSize <= 0 {
			m.BatchSize = engine.DefaultBatchSize
		}
		var err error
		if stmt, err = w.Translate(sys, q); err != nil {
			m.ErrorMsg = err.Error()
			return m
		}
		m.Joins = engine.JoinSteps(stmt)
		if n, err := db.OperatorCount(stmt); err == nil {
			m.Operators = n
		}
		h0, mi0 := db.PlanCacheStats()
		defer func() {
			h1, mi1 := db.PlanCacheStats()
			if total := (h1 - h0) + (mi1 - mi0); total > 0 {
				m.CacheHitRate = float64(h1-h0) / float64(total)
			}
		}()
	}
	run := func() (int, time.Duration, error) {
		start := time.Now()
		var ids []int64
		var err error
		if stmt != nil {
			ids, err = w.runStmt(sys, stmt, budget, w.Parallelism)
		} else {
			ids, err = w.RunBudget(sys, q, budget)
		}
		return len(ids), time.Since(start), err
	}
	n, d, err := run()
	if errors.Is(err, engine.ErrTimeout) {
		m.Timeout = true
		m.Avg = d
		return m
	}
	if err != nil {
		m.ErrorMsg = err.Error()
		return m
	}
	m.Nodes = n
	if budget > 0 && d > budget {
		m.Timeout = true
		m.Avg = d
		return m
	}
	// Mallocs is cumulative and GC-immune, so the delta across the
	// timed loop divided by the repetitions is the allocations per
	// execution (plus a constant sliver of harness overhead).
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	var total time.Duration
	for i := 0; i < reps; i++ {
		_, d, err := run()
		if err != nil {
			m.ErrorMsg = err.Error()
			return m
		}
		total += d
		if budget > 0 && total > budget*time.Duration(reps) {
			m.Reps = i + 1
			break
		}
	}
	runtime.ReadMemStats(&ms1)
	if m.Reps > 0 {
		m.Avg = total / time.Duration(m.Reps)
		m.AllocsPerOp = int64(ms1.Mallocs-ms0.Mallocs) / int64(m.Reps)
	}
	return m
}

// Cell renders a measurement the way Appendix C prints it.
func (m Measurement) Cell() string {
	switch {
	case m.Skipped:
		return "N/A"
	case m.ErrorMsg != "":
		return "ERR"
	case m.Timeout:
		return "~"
	default:
		return fmt.Sprintf("%.3f", m.Avg.Seconds())
	}
}
