package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// BadIgnore tags diagnostics about malformed //xvet:ignore directives.
// It has no Run of its own: the directives are parsed once per package
// in Run, and a directive without an analyzer name or without a
// "-- reason" is itself a finding — unexplained suppressions rot.
var BadIgnore = &Analyzer{
	Name: "xvetignore",
	Doc: "suppression directives must name an analyzer and carry a reason: " +
		"//xvet:ignore <analyzer> -- <reason>; a bare ignore is a diagnostic",
	Run: func(*Pass) error { return nil },
}

const ignorePrefix = "//xvet:ignore"

// An ignoreDirective is one parsed //xvet:ignore comment. It
// suppresses diagnostics of the named analyzers on its own line
// (trailing form) and on the following line (standalone form).
type ignoreDirective struct {
	file      string
	line      int
	analyzers []string
}

// parseIgnores scans a file's comments for directives, returning the
// well-formed ones and reporting malformed ones via report.
func parseIgnores(fset *token.FileSet, f *ast.File, report func(pos token.Pos, format string, args ...any)) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //xvet:ignorefoo — not a directive
			}
			names, reason, hasReason := strings.Cut(rest, "--")
			fields := strings.Fields(names)
			if !hasReason || strings.TrimSpace(reason) == "" {
				report(c.Pos(), "xvet:ignore without a reason; write //xvet:ignore <analyzer> -- <why>")
				continue
			}
			if len(fields) == 0 {
				report(c.Pos(), "xvet:ignore names no analyzer; write //xvet:ignore <analyzer> -- <why>")
				continue
			}
			valid := true
			for _, name := range fields {
				if ByName(name) == nil {
					report(c.Pos(), "xvet:ignore names unknown analyzer %q", name)
					valid = false
				}
			}
			if !valid {
				continue
			}
			pos := fset.Position(c.Pos())
			out = append(out, ignoreDirective{file: pos.Filename, line: pos.Line, analyzers: fields})
		}
	}
	return out
}

// suppressed reports whether d is covered by a directive: same
// analyzer, same file, directive on the diagnostic's line or the line
// above.
func suppressed(fset *token.FileSet, directives []ignoreDirective, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, dir := range directives {
		if dir.file != pos.Filename {
			continue
		}
		if dir.line != pos.Line && dir.line != pos.Line-1 {
			continue
		}
		for _, name := range dir.analyzers {
			if name == d.Analyzer.Name {
				return true
			}
		}
	}
	return false
}
