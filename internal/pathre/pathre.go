// Package pathre implements the regular-expression matcher behind the
// engine's REGEXP_LIKE function — the role Oracle's POSIX ERE matcher
// plays in the paper. The PPF translator emits patterns over
// root-to-node path strings built from anchors, literals, '.',
// bracket classes, grouping, alternation and the *, + and ?
// quantifiers; this package compiles that ERE subset into a Thompson
// NFA and matches in time linear in the input.
//
// Following POSIX ERE (and Oracle REGEXP_LIKE) semantics, an
// unanchored pattern matches if it matches any substring of the
// input.
package pathre

import (
	"fmt"
	"strings"
)

// Regexp is a compiled pattern. It is safe for concurrent use: the
// only mutable state is allocated per Match call.
type Regexp struct {
	prog    []inst
	start   int
	pattern string
	// literal fast path: if non-nil, the pattern is a pure anchored
	// literal '^lit$' and matching is a string comparison.
	literal *string
	// prefix/suffix fast path for patterns of the form '^lit1.*lit2$'.
	prefix, suffix *string
}

type opcode uint8

const (
	opChar  opcode = iota // match one specific byte
	opAny                 // match any byte
	opClass               // match a byte against a class
	opSplit               // fork to x and y
	opJmp                 // jump to x
	opBOL                 // assert beginning of input
	opEOL                 // assert end of input
	opMatch               // accept
)

type inst struct {
	op    opcode
	c     byte
	class *class
	x, y  int
}

type class struct {
	negated bool
	bitmap  [256 / 8]byte
}

func (c *class) add(b byte) { c.bitmap[b/8] |= 1 << (b % 8) }
func (c *class) addRange(lo, hi byte) {
	for b := int(lo); b <= int(hi); b++ {
		c.add(byte(b))
	}
}
func (c *class) matches(b byte) bool {
	in := c.bitmap[b/8]&(1<<(b%8)) != 0
	return in != c.negated
}

// Compile parses and compiles an ERE-subset pattern.
func Compile(pattern string) (*Regexp, error) {
	p := &parser{src: pattern}
	frag, err := p.parseAlt()
	if err != nil {
		return nil, fmt.Errorf("pathre: compile %q: %w", pattern, err)
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("pathre: compile %q: unexpected %q at offset %d", pattern, p.src[p.pos], p.pos)
	}
	prog := p.prog
	prog = append(prog, inst{op: opMatch})
	patch(prog, frag.out, len(prog)-1)
	re := &Regexp{prog: prog, start: frag.start, pattern: pattern}
	re.analyze()
	return re, nil
}

// MustCompile is Compile that panics on error, for statically known
// patterns.
func MustCompile(pattern string) *Regexp {
	re, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return re
}

// String returns the source pattern.
func (re *Regexp) String() string { return re.pattern }

// HasLiteralPath reports whether MatchString short-circuits through
// the literal or prefix/suffix fast path without running the
// automaton. Callers choosing between the NFA simulation and a
// compiled DFA can skip DFA construction for these: a string
// comparison already beats a table walk.
func (re *Regexp) HasLiteralPath() bool { return re.literal != nil || re.prefix != nil }

// analyze detects the literal and prefix/suffix fast paths that cover
// the vast majority of patterns the translator emits (exact paths and
// '^.*/name$' suffix filters).
func (re *Regexp) analyze() {
	s := re.pattern
	if len(s) < 2 || s[0] != '^' || s[len(s)-1] != '$' {
		return
	}
	// Interior '^'/'$' are zero-width assertions, not literal bytes, so
	// their presence disqualifies the fast paths too.
	const meta = `.[]()*+?|\{}^$`
	body := s[1 : len(s)-1]
	if !strings.ContainsAny(body, meta) {
		re.literal = &body
		return
	}
	// '^prefix.*suffix$' with literal prefix/suffix.
	if i := strings.Index(body, ".*"); i >= 0 {
		pre, suf := body[:i], body[i+2:]
		if !strings.ContainsAny(pre, meta) && !strings.ContainsAny(suf, meta) {
			re.prefix, re.suffix = &pre, &suf
		}
	}
}

// MatchString reports whether the pattern matches s (as a substring,
// per POSIX ERE semantics; use ^ and $ to anchor).
func (re *Regexp) MatchString(s string) bool {
	if re.literal != nil {
		return s == *re.literal
	}
	if re.prefix != nil {
		return len(s) >= len(*re.prefix)+len(*re.suffix) &&
			strings.HasPrefix(s, *re.prefix) && strings.HasSuffix(s, *re.suffix)
	}
	return re.match(s)
}

// match runs the Thompson NFA simulation. Because unanchored patterns
// must match at any start offset, the start state is (re-)added at
// every input position.
func (re *Regexp) match(s string) bool {
	n := len(re.prog)
	cur := newStateSet(n)
	next := newStateSet(n)
	addThread(re.prog, cur, re.start, 0, len(s))
	if containsMatch(re.prog, cur) {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		next.clear()
		for _, pc := range cur.list {
			in := &re.prog[pc]
			ok := false
			switch in.op {
			case opChar:
				ok = in.c == c
			case opAny:
				ok = true
			case opClass:
				ok = in.class.matches(c)
			}
			if ok {
				addThread(re.prog, next, in.x, i+1, len(s))
			}
		}
		// Re-seed the start state for unanchored matching.
		addThread(re.prog, next, re.start, i+1, len(s))
		cur, next = next, cur
		if containsMatch(re.prog, cur) {
			return true
		}
	}
	return false
}

type stateSet struct {
	mark []uint32
	gen  uint32
	list []int
}

func newStateSet(n int) *stateSet {
	return &stateSet{mark: make([]uint32, n), gen: 1}
}

func (s *stateSet) clear() {
	s.gen++
	s.list = s.list[:0]
}

func (s *stateSet) add(pc int) bool {
	if s.mark[pc] == s.gen {
		return false
	}
	s.mark[pc] = s.gen
	s.list = append(s.list, pc)
	return true
}

// addThread adds pc and follows epsilon transitions (split, jmp,
// anchors) eagerly, so the run loop only sees consuming instructions
// and opMatch.
func addThread(prog []inst, set *stateSet, pc, pos, n int) {
	if !set.add(pc) {
		return
	}
	switch in := &prog[pc]; in.op {
	case opJmp:
		addThread(prog, set, in.x, pos, n)
	case opSplit:
		addThread(prog, set, in.x, pos, n)
		addThread(prog, set, in.y, pos, n)
	case opBOL:
		if pos == 0 {
			addThread(prog, set, in.x, pos, n)
		}
	case opEOL:
		if pos == n {
			addThread(prog, set, in.x, pos, n)
		}
	}
}

func containsMatch(prog []inst, set *stateSet) bool {
	for _, pc := range set.list {
		if prog[pc].op == opMatch {
			return true
		}
	}
	return false
}

// --- parser ---

// frag is a program fragment: its entry point and the list of
// instruction "out" slots still to be patched.
type frag struct {
	start int
	out   []patchSlot
}

type patchSlot struct {
	pc int
	y  bool // patch inst.y instead of inst.x
}

func patch(prog []inst, slots []patchSlot, target int) {
	for _, s := range slots {
		if s.y {
			prog[s.pc].y = target
		} else {
			prog[s.pc].x = target
		}
	}
}

type parser struct {
	src  string
	pos  int
	prog []inst
}

func (p *parser) emit(in inst) int {
	p.prog = append(p.prog, in)
	return len(p.prog) - 1
}

func (p *parser) peek() (byte, bool) {
	if p.pos < len(p.src) {
		return p.src[p.pos], true
	}
	return 0, false
}

// parseAlt = parseConcat ('|' parseConcat)*
func (p *parser) parseAlt() (frag, error) {
	left, err := p.parseConcat()
	if err != nil {
		return frag{}, err
	}
	for {
		c, ok := p.peek()
		if !ok || c != '|' {
			return left, nil
		}
		p.pos++
		right, err := p.parseConcat()
		if err != nil {
			return frag{}, err
		}
		pc := p.emit(inst{op: opSplit, x: left.start, y: right.start})
		left = frag{start: pc, out: append(left.out, right.out...)}
	}
}

// parseConcat = parseRepeat*
func (p *parser) parseConcat() (frag, error) {
	var cur *frag
	for {
		c, ok := p.peek()
		if !ok || c == '|' || c == ')' {
			break
		}
		next, err := p.parseRepeat()
		if err != nil {
			return frag{}, err
		}
		if cur == nil {
			cur = &next
		} else {
			patch(p.prog, cur.out, next.start)
			cur = &frag{start: cur.start, out: next.out}
		}
	}
	if cur == nil {
		// Empty expression: a jump with a dangling out.
		pc := p.emit(inst{op: opJmp})
		return frag{start: pc, out: []patchSlot{{pc: pc}}}, nil
	}
	return *cur, nil
}

// parseRepeat = parseAtom ('*' | '+' | '?')?
func (p *parser) parseRepeat() (frag, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return frag{}, err
	}
	c, ok := p.peek()
	if !ok {
		return atom, nil
	}
	switch c {
	case '*':
		p.pos++
		pc := p.emit(inst{op: opSplit, x: atom.start})
		patch(p.prog, atom.out, pc)
		return frag{start: pc, out: []patchSlot{{pc: pc, y: true}}}, nil
	case '+':
		p.pos++
		pc := p.emit(inst{op: opSplit, x: atom.start})
		patch(p.prog, atom.out, pc)
		return frag{start: atom.start, out: []patchSlot{{pc: pc, y: true}}}, nil
	case '?':
		p.pos++
		pc := p.emit(inst{op: opSplit, x: atom.start})
		return frag{start: pc, out: append(atom.out, patchSlot{pc: pc, y: true})}, nil
	}
	return atom, nil
}

// parseAtom = literal | '.' | class | '(' parseAlt ')' | '^' | '$' | '\' escaped
func (p *parser) parseAtom() (frag, error) {
	c, ok := p.peek()
	if !ok {
		return frag{}, fmt.Errorf("unexpected end of pattern")
	}
	switch c {
	case '(':
		p.pos++
		inner, err := p.parseAlt()
		if err != nil {
			return frag{}, err
		}
		if c, ok := p.peek(); !ok || c != ')' {
			return frag{}, fmt.Errorf("missing ')'")
		}
		p.pos++
		return inner, nil
	case '.':
		p.pos++
		pc := p.emit(inst{op: opAny})
		return frag{start: pc, out: []patchSlot{{pc: pc}}}, nil
	case '[':
		return p.parseClass()
	case '^':
		p.pos++
		pc := p.emit(inst{op: opBOL})
		return frag{start: pc, out: []patchSlot{{pc: pc}}}, nil
	case '$':
		p.pos++
		pc := p.emit(inst{op: opEOL})
		return frag{start: pc, out: []patchSlot{{pc: pc}}}, nil
	case '\\':
		p.pos++
		e, ok := p.peek()
		if !ok {
			return frag{}, fmt.Errorf("trailing backslash")
		}
		p.pos++
		pc := p.emit(inst{op: opChar, c: e})
		return frag{start: pc, out: []patchSlot{{pc: pc}}}, nil
	case '*', '+', '?':
		return frag{}, fmt.Errorf("quantifier %q with nothing to repeat", c)
	case ')':
		return frag{}, fmt.Errorf("unmatched ')'")
	default:
		p.pos++
		pc := p.emit(inst{op: opChar, c: c})
		return frag{start: pc, out: []patchSlot{{pc: pc}}}, nil
	}
}

func (p *parser) parseClass() (frag, error) {
	p.pos++ // consume '['
	cl := &class{}
	if c, ok := p.peek(); ok && c == '^' {
		cl.negated = true
		p.pos++
	}
	first := true
	for {
		c, ok := p.peek()
		if !ok {
			return frag{}, fmt.Errorf("missing ']'")
		}
		if c == ']' && !first {
			p.pos++
			break
		}
		first = false
		if c == '\\' {
			p.pos++
			if c, ok = p.peek(); !ok {
				return frag{}, fmt.Errorf("trailing backslash in class")
			}
		}
		p.pos++
		// Range a-z?
		if n, ok := p.peek(); ok && n == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++ // consume '-'
			hi, _ := p.peek()
			if hi == '\\' {
				p.pos++
				hi, _ = p.peek()
			}
			p.pos++
			if hi < c {
				return frag{}, fmt.Errorf("invalid class range %q-%q", c, hi)
			}
			cl.addRange(c, hi)
		} else {
			cl.add(c)
		}
	}
	pc := p.emit(inst{op: opClass, class: cl})
	return frag{start: pc, out: []patchSlot{{pc: pc}}}, nil
}
