// Package unguarded seeds an unguarded-field-write defect: an
// annotated field written without its mutex anywhere in scope.
package unguarded

import "sync"

type cache struct {
	mu sync.Mutex
	//guardedby:mu
	hits int
}

// Touch writes the guarded counter lock-free.
func (c *cache) Touch() {
	c.hits++
}

// Count holds the lock, so the struct has one legal accessor.
func (c *cache) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}
